"""Hardened TCP transport (:mod:`repro.service.transport`).

Covers the wire protocol edge by edge — framing, the versioned
signature handshake, typed errors for malformed frames — and the
failure semantics the transport exists for: idempotent retries that
never double-solve (and never double-count a shed verdict),
server-side deadline expiries that deliberately *stay* retryable,
graceful drain versus crash-style abort, degradation to an in-process
service when the retry budget runs dry, and the ``--serve`` /
``--connect`` endpoint validation on the CLI.  Every plan that crosses
the socket is asserted bit-identical to a cold
:class:`~repro.core.solver.FlexSPSolver` solve of the same batch.
"""

from __future__ import annotations

import json
import socket
import struct
import threading
import time
from types import SimpleNamespace

import pytest

from repro.bench import main as bench_main
from repro.cluster.topology import standard_cluster
from repro.core import faults
from repro.core.pools import live_pool_count
from repro.core.solver import FlexSPSolver, SolverConfig
from repro.data.distributions import COMMONCRAWL, GITHUB
from repro.experiments.workloads import Workload
from repro.model.config import GPT_7B
from repro.service import (
    HandshakeError,
    PlanClient,
    PlanDeadlineExceeded,
    PlanServer,
    PlanService,
    RequestShed,
    TransportError,
)
from repro.service.transport import (
    MAX_FRAME_BYTES,
    PROTOCOL_VERSION,
    encode_frame,
)

MAX_CONTEXT = 16 * 1024
RESULT_TIMEOUT = 300.0


def small_workload(distribution=COMMONCRAWL, seed: int = 0) -> Workload:
    return Workload(
        model=GPT_7B,
        distribution=distribution,
        max_context=MAX_CONTEXT,
        cluster=standard_cluster(8),
        global_batch_size=8,
        seed=seed,
    )


def batch_lengths(workload: Workload, step: int) -> tuple[int, ...]:
    return workload.corpus().batch(step).lengths


def assert_bit_equal(a, b) -> None:
    assert a.microbatches == b.microbatches
    assert a.predicted_time == b.predicted_time


def _cold_model(workload: Workload):
    from repro.cost.profiler import fit_cost_model

    return fit_cost_model(
        workload.model_at_context, workload.cluster, workload.checkpointing
    )


# -- raw-socket helpers (the server's wire contract, no client) --------


def _connect(server: PlanServer) -> socket.socket:
    sock = socket.create_connection(server.address, timeout=5.0)
    sock.settimeout(5.0)
    return sock


def _recv_exact(sock: socket.socket, size: int) -> bytes:
    buffer = b""
    deadline = time.monotonic() + 10.0
    while len(buffer) < size:
        if time.monotonic() > deadline:
            raise AssertionError("timed out reading from the server")
        chunk = sock.recv(size - len(buffer))
        if not chunk:
            raise AssertionError("server closed the connection mid-frame")
        buffer += chunk
    return buffer


def _recv_frame(sock: socket.socket) -> dict:
    (size,) = struct.unpack(">I", _recv_exact(sock, 4))
    return json.loads(_recv_exact(sock, size).decode("utf-8"))


def _handshake(sock: socket.socket) -> dict:
    sock.sendall(encode_frame({"type": "hello", "protocol": PROTOCOL_VERSION}))
    return _recv_frame(sock)


@pytest.fixture(scope="module")
def served():
    """One registered tenant behind a live loopback server, shared by
    the read-only protocol tests (fault/drain tests build their own)."""
    workload = small_workload()
    service = PlanService(worker_threads=2)
    tenant = service.register(workload)
    server = PlanServer(service, owns_service=True)
    yield SimpleNamespace(
        server=server, service=service, tenant=tenant, workload=workload
    )
    server.close()


class TestFraming:
    def test_round_trip(self):
        frame = encode_frame({"type": "ping", "id": "x"})
        (size,) = struct.unpack(">I", frame[:4])
        assert size == len(frame) - 4
        assert json.loads(frame[4:].decode("utf-8")) == {
            "type": "ping",
            "id": "x",
        }

    def test_oversized_frame_refused(self):
        with pytest.raises(TransportError, match="exceeds"):
            encode_frame({"pad": "x" * MAX_FRAME_BYTES})


class TestHandshake:
    def test_welcome_advertises_version_and_signatures(self, served):
        sock = _connect(served.server)
        try:
            welcome = _handshake(sock)
        finally:
            sock.close()
        assert welcome["type"] == "welcome"
        assert welcome["protocol"] == PROTOCOL_VERSION
        digest = welcome["tenants"][served.tenant]
        assert isinstance(digest, str) and digest

    def test_protocol_mismatch_gets_typed_error(self, served):
        sock = _connect(served.server)
        try:
            sock.sendall(encode_frame({"type": "hello", "protocol": 99}))
            reply = _recv_frame(sock)
        finally:
            sock.close()
        assert reply["type"] == "error"
        assert reply["error"] == "protocol"

    def test_signature_mismatch_refused_client_side(self, served):
        # Same tenant name, different workload (seed) — the client must
        # refuse to plan against the wrong cost model, and the error
        # must not be retried (it would never succeed).
        wrong = {served.tenant: small_workload(seed=1)}
        host, port = served.server.address
        with PlanClient(host, port, jobs=wrong, retries=5) as client:
            with pytest.raises(HandshakeError, match="signature mismatch"):
                client.plan(
                    served.tenant, batch_lengths(served.workload, 0)
                )
            assert client.stats()["retries"] == 0


class TestProtocolEdges:
    def test_bad_json_survives_connection(self, served):
        sock = _connect(served.server)
        try:
            _handshake(sock)
            sock.sendall(struct.pack(">I", 5) + b"nojso")
            reply = _recv_frame(sock)
            assert reply["type"] == "error"
            assert reply["error"] == "bad-frame"
            # Framing stayed in sync: the connection still serves.
            sock.sendall(encode_frame({"type": "ping", "id": "p"}))
            assert _recv_frame(sock)["type"] == "pong"
        finally:
            sock.close()

    def test_garbage_length_prefix_is_fatal(self, served):
        sock = _connect(served.server)
        try:
            _handshake(sock)
            sock.sendall(struct.pack(">I", MAX_FRAME_BYTES + 1))
            reply = _recv_frame(sock)
            assert reply["error"] == "bad-frame"
            # The stream has lost sync — the server hangs up.
            assert sock.recv(1) == b""
        finally:
            sock.close()

    def test_unknown_frame_type(self, served):
        sock = _connect(served.server)
        try:
            _handshake(sock)
            sock.sendall(encode_frame({"type": "solve", "id": "q"}))
            reply = _recv_frame(sock)
        finally:
            sock.close()
        assert reply["error"] == "bad-request"
        assert reply["id"] == "q"

    def test_malformed_plan_frame(self, served):
        sock = _connect(served.server)
        try:
            _handshake(sock)
            sock.sendall(
                encode_frame(
                    {
                        "type": "plan",
                        "id": "m",
                        "tenant": served.tenant,
                        "lengths": [True, -4],
                    }
                )
            )
            reply = _recv_frame(sock)
        finally:
            sock.close()
        assert reply["error"] == "bad-request"

    def test_unknown_tenant_over_tcp(self, served):
        host, port = served.server.address
        with PlanClient(host, port) as client:
            with pytest.raises(ValueError, match="unknown tenant"):
                client.plan("nobody", (1024, 2048))


class TestClientServer:
    def test_plans_bit_identical_and_warm_second_time(self, served):
        host, port = served.server.address
        lengths = batch_lengths(served.workload, 1)
        with PlanClient(host, port, jobs={served.tenant: served.workload}) as client:
            first = client.plan(served.tenant, lengths)
            second = client.plan(served.tenant, lengths)
            assert client.stats()["served"] == 2
            assert client.stats()["degraded"] == 0
        assert first.source in ("solved", "warm")
        assert second.source == "warm"
        assert_bit_equal(first.plan, second.plan)
        cold = FlexSPSolver(_cold_model(served.workload), SolverConfig())
        try:
            assert_bit_equal(cold.solve(lengths), first.plan)
        finally:
            cold.close()

    def test_ping_round_trip(self, served):
        host, port = served.server.address
        with PlanClient(host, port) as client:
            rtt = client.ping()
        assert 0 < rtt < 5.0


class TestIdempotentRetry:
    def test_dropped_response_never_double_solves(self):
        """The acceptance-critical path: the response is solved and
        recorded but never sent; the retry replays the recorded answer
        instead of re-entering the engine."""
        workload = small_workload(GITHUB, seed=3)
        service = PlanService(worker_threads=1)
        tenant = service.register(workload)
        with PlanServer(service, owns_service=True) as server:
            host, port = server.address
            schedule = faults.FaultSchedule.parse("drop_response@send")
            with faults.armed(schedule):
                with PlanClient(
                    host, port, retries=3, io_timeout=1.0, backoff_base=0.01
                ) as client:
                    lengths = batch_lengths(workload, 0)
                    plan = client.plan(tenant, lengths)
                    stats = client.stats()
            assert schedule.injection_counts() == {"drop_response@send": 1}
            assert stats["retries"] == 1
            assert server.stats()["replayed"] == 1
            assert server.stats()["dropped_responses"] == 1
            assert service.stats()["solved"] == 1
        cold = FlexSPSolver(_cold_model(workload), SolverConfig())
        try:
            assert_bit_equal(cold.solve(lengths), plan.plan)
        finally:
            cold.close()

    def test_shed_verdict_replayed_not_double_counted(self):
        """A shed verdict is final per request id: a retry replays it
        from the idempotency window, so the deterministic shed
        accounting cannot be flipped (or double-counted) by a lost
        response."""
        workload = small_workload(GITHUB, seed=4)
        service = PlanService(
            autostart=False, max_pending_per_tenant=1, worker_threads=1
        )
        tenant = service.register(workload)
        blocked = service.submit(tenant, batch_lengths(workload, 0))
        with PlanServer(service, owns_service=True) as server:
            sock = _connect(server)
            try:
                _handshake(sock)
                frame = {
                    "type": "plan",
                    "id": "rid-shed",
                    "tenant": tenant,
                    "lengths": list(batch_lengths(workload, 1)),
                }
                sock.sendall(encode_frame(frame))
                first = _recv_frame(sock)
                sock.sendall(encode_frame(frame))
                second = _recv_frame(sock)
            finally:
                sock.close()
            assert first["error"] == "shed"
            assert second["error"] == "shed"
            assert server.stats()["replayed"] == 1
            # One shed, not two: the retry never reached the service.
            assert service.stats()["shed"] == 1
            service.start()
            blocked.result(timeout=RESULT_TIMEOUT)

    def test_server_deadline_expiry_is_retryable(self):
        """``deadline`` errors are deliberately *not* remembered: the
        flight may still finish, and the retry answers warm."""
        workload = small_workload(GITHUB, seed=5)
        service = PlanService(autostart=False, worker_threads=1)
        tenant = service.register(workload)
        with PlanServer(service, owns_service=True) as server:
            sock = _connect(server)
            try:
                _handshake(sock)
                frame = {
                    "type": "plan",
                    "id": "rid-dl",
                    "tenant": tenant,
                    "lengths": list(batch_lengths(workload, 0)),
                    "deadline_ms": 150,
                }
                sock.sendall(encode_frame(frame))
                expired = _recv_frame(sock)
                assert expired["error"] == "deadline"
                # The engine wakes up; the same request id now serves.
                service.start()
                frame["deadline_ms"] = int(RESULT_TIMEOUT * 1000)
                sock.sendall(encode_frame(frame))
                answered = _recv_frame(sock)
            finally:
                sock.close()
            assert answered["type"] == "plan"
            assert answered["id"] == "rid-dl"
            assert server.stats()["replayed"] == 0

    def test_coalesced_over_tcp(self):
        """Two clients, same shape, paused service: one solve serves
        both, bit-equal, via the service's in-flight map."""
        workload = small_workload(GITHUB, seed=6)
        service = PlanService(autostart=False, worker_threads=2)
        tenant = service.register(workload)
        lengths = batch_lengths(workload, 0)
        results: list = [None, None]

        def request(slot: int) -> None:
            host, port = server.address
            with PlanClient(host, port, io_timeout=60.0) as client:
                results[slot] = client.plan(
                    tenant, lengths, deadline=RESULT_TIMEOUT
                )

        with PlanServer(service, owns_service=True) as server:
            threads = [
                threading.Thread(target=request, args=(slot,))
                for slot in range(2)
            ]
            for thread in threads:
                thread.start()
            deadline = time.monotonic() + 30.0
            while service.stats()["submitted"] < 2:
                assert time.monotonic() < deadline, "submissions never landed"
                time.sleep(0.01)
            service.start()
            for thread in threads:
                thread.join(timeout=RESULT_TIMEOUT)
                assert not thread.is_alive()
            stats = service.stats()
        assert stats["solved"] == 1
        assert stats["coalesced"] == 1
        assert_bit_equal(results[0].plan, results[1].plan)

    def test_shed_propagates_over_tcp(self):
        workload = small_workload(GITHUB, seed=7)
        service = PlanService(
            autostart=False, max_pending_per_tenant=1, worker_threads=1
        )
        tenant = service.register(workload)
        blocked = service.submit(tenant, batch_lengths(workload, 0))
        with PlanServer(service, owns_service=True) as server:
            host, port = server.address
            with PlanClient(host, port) as client:
                with pytest.raises(RequestShed):
                    client.plan(tenant, batch_lengths(workload, 1))
                assert client.stats()["shed"] == 1
            service.start()
            blocked.result(timeout=RESULT_TIMEOUT)


class TestDegradation:
    def _unused_port(self) -> int:
        probe = socket.socket()
        probe.bind(("127.0.0.1", 0))
        port = probe.getsockname()[1]
        probe.close()
        return port

    def test_exhausted_budget_without_jobs_raises(self):
        client = PlanClient(
            "127.0.0.1",
            self._unused_port(),
            retries=1,
            backoff_base=0.01,
            io_timeout=0.5,
        )
        with client:
            with pytest.raises(PlanDeadlineExceeded, match="no fallback"):
                client.plan("anyone", (1024,))
        stats = client.stats()
        assert stats["failed"] == 1
        assert stats["retries"] == 2  # initial attempt + retry, both counted

    def test_exhausted_budget_degrades_to_in_process(self):
        baseline_pools = live_pool_count()
        workload = small_workload(GITHUB, seed=8)
        lengths = batch_lengths(workload, 0)
        client = PlanClient(
            "127.0.0.1",
            self._unused_port(),
            jobs={"solo": workload},
            retries=1,
            backoff_base=0.01,
            io_timeout=0.5,
        )
        with client:
            plan = client.plan("solo", lengths)
            assert client.stats()["degraded"] == 1
            assert plan.source in ("solved", "warm")
        cold = FlexSPSolver(_cold_model(workload), SolverConfig())
        try:
            assert_bit_equal(cold.solve(lengths), plan.plan)
        finally:
            cold.close()
        # The private fallback service released its pools on close().
        assert live_pool_count() == baseline_pools


class TestDrainAndLeaks:
    def test_graceful_drain_releases_everything(self):
        baseline_pools = live_pool_count()
        baseline_threads = set(threading.enumerate())
        workload = small_workload(GITHUB, seed=9)
        service = PlanService(worker_threads=1)
        tenant = service.register(workload)
        server = PlanServer(service, owns_service=True)
        host, port = server.address
        with PlanClient(host, port) as client:
            client.plan(tenant, batch_lengths(workload, 0))
        server.close()
        server.close()  # idempotent
        assert server.live_connections() == 0
        assert live_pool_count() == baseline_pools
        # Only this server's threads: the module fixture's server is
        # still (correctly) accepting in the background.
        lingering = [
            t.name
            for t in threading.enumerate()
            if t.name.startswith("plan-server") and t not in baseline_threads
        ]
        assert lingering == []
        # A connect after close is refused outright.
        with pytest.raises(OSError):
            _connect(server)

    def test_idle_connection_told_closing_on_drain(self):
        workload = small_workload(GITHUB, seed=10)
        service = PlanService(worker_threads=1)
        service.register(workload)
        server = PlanServer(service, owns_service=True)
        sock = _connect(server)
        try:
            _handshake(sock)
            server.close()  # drains; the idle peer is notified first
            reply = _recv_frame(sock)
        finally:
            sock.close()
        assert reply["type"] == "error"
        assert reply["error"] == "closing"

    def test_excess_connections_refused_not_queued(self):
        workload = small_workload(GITHUB, seed=11)
        service = PlanService(worker_threads=1)
        service.register(workload)
        with PlanServer(service, owns_service=True, max_connections=1) as server:
            first = _connect(server)
            try:
                _handshake(first)
                # The RST can surface at connect(), at the hello send,
                # or as EOF while awaiting the welcome — never as a
                # successful handshake.
                with pytest.raises((AssertionError, ConnectionError)):
                    second = _connect(server)
                    try:
                        _handshake(second)
                    finally:
                        second.close()
                deadline = time.monotonic() + 5.0
                while server.stats()["refused"] < 1:
                    assert time.monotonic() < deadline
                    time.sleep(0.01)
            finally:
                first.close()


class TestEndpointCli:
    """``--serve --listen`` / ``--service --connect`` argument
    validation: malformed or out-of-range endpoints fail fast with an
    argparse error (exit code 2), never a mid-run socket error."""

    @pytest.mark.parametrize(
        "argv",
        [
            ["--service", "--connect", "nocolon"],
            ["--service", "--connect", "host:"],
            ["--service", "--connect", "host:notaport"],
            ["--service", "--connect", "host:0"],
            ["--service", "--connect", "host:65536"],
            ["--service", "--connect", "host:-1"],
            ["--serve", "--listen", "1.2.3.4:99999"],
            ["--serve", "--listen", "9000"],
        ],
    )
    def test_malformed_endpoints_exit_fast(self, argv, capsys):
        with pytest.raises(SystemExit) as excinfo:
            bench_main(argv)
        assert excinfo.value.code == 2
        assert "port" in capsys.readouterr().err.lower()

    def test_ephemeral_port_allowed_only_for_listen(self, capsys):
        # --listen 0 binds an ephemeral port (valid); --connect 0 can
        # never reach anything (rejected above).  Validated by parsing
        # only: --serve-seconds must also be positive, so this exits
        # before any socket is opened.
        with pytest.raises(SystemExit) as excinfo:
            bench_main(
                ["--serve", "--listen", "127.0.0.1:0", "--serve-seconds", "0"]
            )
        assert excinfo.value.code == 2
        assert "serve-seconds" in capsys.readouterr().err
