"""Planning-as-a-service front-end (:mod:`repro.service`).

Covers the tentpole's concurrency edges: in-flight coalescing (one
solve, N bit-equal answers), the warm fast path, deterministic
per-tenant admission shedding, clean shutdown with requests still
queued (no leaked pool workers), store-backed warm restarts, and the
seeded trace generator the service benchmark drives load with.
"""

from __future__ import annotations

import threading
import time

import pytest

from repro.cluster.topology import standard_cluster
from repro.core.pools import live_pool_count
from repro.core.solver import FlexSPSolver, SolverConfig
from repro.data.distributions import COMMONCRAWL, GITHUB
from repro.experiments.workloads import Workload
from repro.model.config import GPT_7B
from repro.service import (
    GammaProcess,
    PlanService,
    RequestShed,
    ServiceClosed,
    service_jobs,
    synthesize_trace,
)

MAX_CONTEXT = 16 * 1024
RESULT_TIMEOUT = 300.0


def small_workload(distribution=COMMONCRAWL, seed: int = 0) -> Workload:
    return Workload(
        model=GPT_7B,
        distribution=distribution,
        max_context=MAX_CONTEXT,
        cluster=standard_cluster(8),
        global_batch_size=8,
        seed=seed,
    )


@pytest.fixture(scope="module")
def store_dir(tmp_path_factory):
    """Module-shared store: the first fit spills, later tests restore."""
    return tmp_path_factory.mktemp("service_store")


def batch_lengths(workload: Workload, step: int) -> tuple[int, ...]:
    return workload.corpus().batch(step).lengths


def assert_bit_equal(a, b) -> None:
    assert a.microbatches == b.microbatches
    assert a.predicted_time == b.predicted_time


class TestCoalescing:
    def test_waiters_receive_bit_equal_plans(self, store_dir):
        workload = small_workload()
        with PlanService(autostart=False, store=store_dir) as service:
            tenant = service.register(workload)
            lengths = batch_lengths(workload, 0)
            tickets = [service.submit(tenant, lengths) for _ in range(4)]
            # Paused service: the three duplicates attached to the
            # first submission's flight deterministically.
            assert service.stats()["coalesced"] == 3
            service.start()
            served = [t.result(timeout=RESULT_TIMEOUT) for t in tickets]
        assert sorted(p.source for p in served) == [
            "coalesced",
            "coalesced",
            "coalesced",
            "solved",
        ]
        for plan in served[1:]:
            assert_bit_equal(served[0].plan, plan.plan)
        # One solve served all four answers, bit-identical to a cold
        # solve of the same shape on a fresh engine.
        stats = service.stats()
        assert stats["solved"] == 1
        assert stats["served"] == 4
        cold = FlexSPSolver(_cold_model(workload), SolverConfig())
        assert_bit_equal(cold.solve(lengths), served[0].plan)

    def test_warm_requests_answered_from_plan_cache(self, store_dir):
        workload = small_workload()
        with PlanService(store=store_dir) as service:
            tenant = service.register(workload)
            lengths = batch_lengths(workload, 0)
            first = service.submit(tenant, lengths).result(
                timeout=RESULT_TIMEOUT
            )
            warm_ticket = service.submit(tenant, lengths)
            # Warm requests resolve synchronously in the submitting
            # thread — no queue round-trip.
            assert warm_ticket.done()
            warm = warm_ticket.result()
        assert warm.source == "warm"
        assert_bit_equal(first.plan, warm.plan)
        # The first request may itself have been warm (module store
        # restored from an earlier test's spill); the repeat must be.
        assert service.stats()["warm_hits"] >= 1


class TestAdmissionControl:
    def shed_pattern(self, *, seed: int) -> list[bool]:
        workload = small_workload(GITHUB, seed=seed)
        with PlanService(
            autostart=False, max_pending_per_tenant=2
        ) as service:
            tenant = service.register(workload)
            tickets = [
                service.submit(tenant, batch_lengths(workload, step))
                for step in range(5)
            ]
            pattern = [t.shed for t in tickets]
            stats = service.stats()
            assert stats["shed"] == sum(pattern)
            assert stats["shed_by_tenant"][tenant] == sum(pattern)
            for ticket in tickets:
                if ticket.shed:
                    with pytest.raises(RequestShed):
                        ticket.result()
        return pattern

    def test_shed_is_deterministic_over_the_pending_bound(self):
        # Five distinct cold shapes against a bound of two: the first
        # two admit, the rest shed — identically on every run.
        first = self.shed_pattern(seed=3)
        assert first == [False, False, True, True, True]
        assert self.shed_pattern(seed=3) == first

    def test_unknown_tenant_rejected(self):
        with PlanService(autostart=False) as service:
            with pytest.raises(ValueError, match="unknown tenant"):
                service.submit("nobody", (128, 256))

    def test_duplicate_registration_rejected(self):
        workload = small_workload()
        with PlanService(autostart=False) as service:
            service.register(workload)
            with pytest.raises(ValueError, match="already registered"):
                service.register(workload)


class TestShutdown:
    def test_close_cancels_queued_requests_and_releases_pools(self):
        baseline = live_pool_count()
        # Fresh corpus seed: nothing warm, every submit really queues.
        workload = small_workload(seed=7)
        service = PlanService(autostart=False, solver_workers=2)
        tenant = service.register(workload)
        tickets = [
            service.submit(tenant, batch_lengths(workload, step))
            for step in range(3)
        ]
        service.close()
        for ticket in tickets:
            with pytest.raises(ServiceClosed):
                ticket.result(timeout=RESULT_TIMEOUT)
        assert service.stats()["cancelled"] == 3
        # No leaked pool workers: the shared SolverPool (and any
        # solver-owned pools) are gone.
        assert live_pool_count() == baseline
        with pytest.raises(ServiceClosed):
            service.submit(tenant, batch_lengths(workload, 0))
        # Idempotent.
        service.close()

    def test_store_round_trip_serves_restart_warm(self, tmp_path):
        workload = small_workload()
        lengths = batch_lengths(workload, 0)
        with PlanService(store=tmp_path) as service:
            tenant = service.register(workload)
            first = service.submit(tenant, lengths).result(
                timeout=RESULT_TIMEOUT
            )
        # A fresh service over the same store restores the cost model
        # and plan cache: the same request is warm at submit.
        with PlanService(store=tmp_path) as restarted:
            tenant = restarted.register(workload)
            ticket = restarted.submit(tenant, lengths)
            assert ticket.done()
            warm = ticket.result()
        assert warm.source == "warm"
        assert_bit_equal(first.plan, warm.plan)


class TestTickets:
    def test_result_timeout_expires_then_succeeds(self):
        # Paused service: nothing solves, so the wait genuinely
        # expires — and the ticket stays valid for a later, patient
        # result() call once the engine starts.
        workload = small_workload(GITHUB, seed=12)
        with PlanService(autostart=False) as service:
            tenant = service.register(workload)
            ticket = service.submit(tenant, batch_lengths(workload, 0))
            with pytest.raises(TimeoutError, match="not ready within"):
                ticket.result(timeout=0.05)
            service.start()
            served = ticket.result(timeout=RESULT_TIMEOUT)
            assert served.source == "solved"


class TestReplay:
    def _single_job(self, seed: int) -> dict:
        workload = small_workload(GITHUB, seed=seed)
        jobs = service_jobs(max_context=MAX_CONTEXT, global_batch_size=8)
        name = sorted(jobs)[0]
        return {name: workload}

    def test_replay_on_closed_service_returns_empty(self):
        # Regression: replay used to let the first submit's
        # ServiceClosed escape with earlier tickets unawaited.
        jobs = self._single_job(seed=13)
        service = PlanService(autostart=False)
        for name, workload in jobs.items():
            service.register(workload, name=name)
        service.close()
        trace = synthesize_trace(jobs, duration=1.0, rate=5.0, seed=0)
        assert trace
        assert service.replay(trace) == []

    def test_close_mid_trace_returns_partial_tickets(self):
        jobs = self._single_job(seed=14)
        trace = synthesize_trace(
            jobs, duration=2.0, rate=10.0, seed=1, step_window=4
        )
        # Preconditions for "partial": arrivals both sides of the close.
        assert trace[0].time < 0.5 < 1.0 < trace[-1].time
        service = PlanService(autostart=False, max_pending_per_tenant=64)
        for name, workload in jobs.items():
            service.register(workload, name=name)
        closer = threading.Timer(0.6, service.close)
        closer.start()
        try:
            tickets = service.replay(trace, realtime=True)
        finally:
            closer.join()
        assert 0 < len(tickets) < len(trace)
        # Every returned ticket still resolves — answered, shed, or
        # cancelled — never left hanging.
        for ticket in tickets:
            with pytest.raises((RequestShed, ServiceClosed)):
                ticket.result(timeout=RESULT_TIMEOUT)

    def test_realtime_replay_honours_arrival_offsets(self):
        jobs = self._single_job(seed=15)
        trace = synthesize_trace(
            jobs, duration=1.2, rate=5.0, seed=2, step_window=2
        )
        last_arrival = trace[-1].time
        assert last_arrival > 0.3
        with PlanService(
            autostart=False, max_pending_per_tenant=64
        ) as service:
            for name, workload in jobs.items():
                service.register(workload, name=name)
            started = time.perf_counter()
            paced = service.replay(trace, realtime=True)
            paced_wall = time.perf_counter() - started
            started = time.perf_counter()
            burst = service.replay(trace)
            burst_wall = time.perf_counter() - started
        assert len(paced) == len(burst) == len(trace)
        # Open-loop pacing waits for the last arrival; the closed-loop
        # burst submits the same trace effectively instantly.
        assert paced_wall >= last_arrival
        assert burst_wall < last_arrival / 2


class TestTraffic:
    def test_trace_is_a_pure_function_of_its_seed(self):
        jobs = service_jobs(max_context=MAX_CONTEXT, global_batch_size=8)
        kwargs = dict(duration=5.0, rate=1.5, cv=2.0, step_window=3)
        a = synthesize_trace(jobs, seed=11, **kwargs)
        b = synthesize_trace(jobs, seed=11, **kwargs)
        assert a == b
        assert a != synthesize_trace(jobs, seed=12, **kwargs)

    def test_trace_is_time_sorted_and_within_duration(self):
        jobs = service_jobs(max_context=MAX_CONTEXT, global_batch_size=8)
        trace = synthesize_trace(jobs, duration=5.0, rate=2.0, seed=0)
        assert trace
        times = [r.time for r in trace]
        assert times == sorted(times)
        assert all(0 <= t < 5.0 for t in times)
        assert {r.tenant for r in trace} <= set(jobs)

    def test_trace_batches_match_the_corpus(self):
        jobs = service_jobs(max_context=MAX_CONTEXT, global_batch_size=8)
        trace = synthesize_trace(
            jobs, duration=4.0, rate=1.0, seed=5, step_window=2
        )
        for request in trace[:4]:
            expected = jobs[request.tenant].corpus().batch(request.step)
            assert request.lengths == expected.lengths

    def test_gamma_process_validates_parameters(self):
        with pytest.raises(ValueError, match="rate"):
            GammaProcess(0.0)
        with pytest.raises(ValueError, match="cv"):
            GammaProcess(1.0, cv=-1.0)
        jobs = service_jobs(max_context=MAX_CONTEXT, global_batch_size=8)
        with pytest.raises(ValueError, match="duration"):
            synthesize_trace(jobs, duration=0.0, rate=1.0)
        with pytest.raises(ValueError, match="step_window"):
            synthesize_trace(jobs, duration=1.0, rate=1.0, step_window=0)


def _cold_model(workload: Workload):
    from repro.cost.profiler import fit_cost_model

    return fit_cost_model(
        workload.model_at_context, workload.cluster, workload.checkpointing
    )
