"""Tests for repro.core.solver: the Alg. 1 workflow."""

import pytest

from repro.core.planner import PlanInfeasibleError, PlannerConfig
from repro.core.solver import FlexSPSolver, SolverConfig
from repro.core.types import SequenceBatch

FAST_PLANNER = PlannerConfig(time_limit=0.5, mip_rel_gap=0.05)


def fast_solver(model, **overrides) -> FlexSPSolver:
    defaults = dict(num_trials=2, planner=FAST_PLANNER)
    defaults.update(overrides)
    return FlexSPSolver(model, SolverConfig(**defaults))


class TestSolverConfig:
    def test_defaults_match_paper(self):
        cfg = SolverConfig()
        assert cfg.num_trials == 5
        assert cfg.backend == "milp"
        assert cfg.sort_sequences is True

    def test_rejects_unknown_backend(self):
        with pytest.raises(ValueError, match="backend"):
            SolverConfig(backend="quantum")

    def test_rejects_bad_trials(self):
        with pytest.raises(ValueError, match="num_trials"):
            SolverConfig(num_trials=0)

    def test_rejects_bad_safety(self):
        with pytest.raises(ValueError, match="capacity_safety"):
            SolverConfig(capacity_safety=0.0)


class TestSolve:
    def test_plan_covers_batch(self, cost_model8):
        batch = SequenceBatch(lengths=(4096, 8192, 2048, 1024, 512, 16384))
        plan = fast_solver(cost_model8).solve(batch)
        planned = sorted(
            s for mb in plan.microbatches for g in mb.groups for s in g.lengths
        )
        assert planned == sorted(batch.lengths)

    def test_accepts_raw_tuple(self, cost_model8):
        plan = fast_solver(cost_model8).solve((4096, 2048))
        assert plan.num_sequences == 2

    def test_single_microbatch_when_batch_fits(self, cost_model8):
        batch = SequenceBatch(lengths=(1024,) * 8)
        solver = fast_solver(cost_model8)
        assert solver.minimum_microbatches(batch) == 1

    def test_gradient_accumulation_kicks_in(self, cost_model8):
        """A batch bigger than cluster memory must be chunked."""
        per_device = int(cost_model8.max_tokens_per_device())
        batch = SequenceBatch(lengths=(per_device // 2,) * 40)
        solver = fast_solver(cost_model8)
        assert solver.minimum_microbatches(batch) >= 2
        plan = solver.solve(batch)
        assert plan.num_microbatches >= 2

    def test_predicted_time_is_sum_of_microbatches(self, cost_model8):
        from repro.core.planner import plan_makespan

        batch = SequenceBatch(lengths=(4096,) * 20)
        plan = fast_solver(cost_model8).solve(batch)
        recomputed = sum(
            max(
                cost_model8.time_with_overheads(g.lengths, g.degree)
                for g in mb.groups
            )
            for mb in plan.microbatches
        )
        assert plan.predicted_time == pytest.approx(recomputed, rel=1e-6)

    def test_solver_name_records_backend(self, cost_model8):
        plan = fast_solver(cost_model8, backend="greedy").solve((1024, 2048))
        assert plan.solver_name == "flexsp-greedy"

    def test_infeasible_batch_raises(self, cost_model8):
        huge = int(cost_model8.max_tokens_per_device() * 100)
        with pytest.raises(PlanInfeasibleError):
            fast_solver(cost_model8).solve((huge,))


class TestBackendsAgree:
    def test_greedy_and_milp_cover_same_batch(self, cost_model8):
        batch = SequenceBatch(lengths=(8192, 4096, 2048, 1024) * 3)
        milp_plan = fast_solver(cost_model8, backend="milp").solve(batch)
        greedy_plan = fast_solver(cost_model8, backend="greedy").solve(batch)
        for plan in (milp_plan, greedy_plan):
            planned = sorted(
                s for mb in plan.microbatches for g in mb.groups for s in g.lengths
            )
            assert planned == sorted(batch.lengths)

    def test_milp_not_worse_than_greedy(self, cost_model8):
        """With the greedy incumbent, the MILP backend can only improve."""
        batch = SequenceBatch(lengths=(16384, 8192, 4096, 2048, 1024) * 2)
        milp_plan = fast_solver(cost_model8, backend="milp").solve(batch)
        greedy_plan = fast_solver(cost_model8, backend="greedy").solve(batch)
        assert milp_plan.predicted_time <= greedy_plan.predicted_time * 1.001


class TestAblationHooks:
    def test_ablated_returns_new_solver(self, cost_model8):
        solver = fast_solver(cost_model8)
        ablated = solver.ablated(sort_sequences=False)
        assert ablated.config.sort_sequences is False
        assert solver.config.sort_sequences is True

    def test_no_sort_still_valid(self, cost_model8):
        batch = SequenceBatch(lengths=(16384, 1024, 8192, 512, 4096, 2048))
        plan = fast_solver(cost_model8, sort_sequences=False).solve(batch)
        planned = sorted(
            s for mb in plan.microbatches for g in mb.groups for s in g.lengths
        )
        assert planned == sorted(batch.lengths)

    def test_naive_bucketing_still_valid(self, cost_model8):
        cfg = PlannerConfig(time_limit=0.5, bucketing="naive")
        batch = SequenceBatch(lengths=(16384, 1024, 8192, 512))
        plan = fast_solver(cost_model8, planner=cfg).solve(batch)
        assert plan.num_sequences == 4


class TestParallelSolve:
    def test_worker_pool_matches_serial(self, cost_model8):
        batch = SequenceBatch(lengths=(4096, 2048, 1024, 8192) * 2)
        serial = fast_solver(cost_model8, backend="greedy").solve(batch)
        parallel = fast_solver(cost_model8, backend="greedy", workers=2).solve(batch)
        assert parallel.predicted_time == pytest.approx(serial.predicted_time)


class TestSolverServiceRecovery:
    def test_recovers_after_worker_death(self, cost_model8):
        """A SIGKILLed worker must not poison the persistent pool."""
        import os
        import signal

        solver = fast_solver(cost_model8, backend="greedy", workers=2)
        with solver:
            first = solver.solve((4096, 2048, 1024, 8192) * 2)
            assert first.num_sequences == 8
            service = solver._service
            assert service is not None and service._pool is not None
            for pid in list(service._pool._processes):
                os.kill(pid, signal.SIGKILL)
            # A different batch (no cache hits) must transparently
            # rebuild the pool and still match a serial solve.
            batch = (4000, 2000, 1000, 8000) * 2
            recovered = solver.solve(batch)
            serial = fast_solver(cost_model8, backend="greedy").solve(batch)
            assert recovered.predicted_time == serial.predicted_time
            assert recovered.microbatches == serial.microbatches


class TestColdShapeSurface:
    """pending_shapes / plan_shapes_cold / seed_plan — the campaign
    prewarmer's planner-call-granularity dedup hooks."""

    def test_pending_then_seed_then_full_hit(self, cost_model8):
        batch = SequenceBatch(lengths=(4096, 8192, 2048, 1024, 512, 16384) * 2)
        solver = fast_solver(cost_model8, backend="greedy")
        pending = solver.pending_shapes(batch)
        assert pending, "cold solver must report uncached shapes"
        assert pending == sorted(pending, key=lambda s: (len(s), s))
        outcomes = solver.plan_shapes_cold(pending)
        for shape, outcome in zip(pending, outcomes):
            solver.seed_plan(shape, outcome)
        assert solver.pending_shapes(batch) == []
        result = solver.solve(batch)
        assert result.stats is not None
        assert result.stats.planner_calls == 0
        assert result.stats.hit_rate == 1.0

    def test_seeded_solve_bit_identical_to_cold_solve(self, cost_model8):
        batch = SequenceBatch(lengths=(4096, 8192, 2048, 1024, 512, 16384) * 2)
        cold = fast_solver(cost_model8, backend="greedy").solve(batch)
        seeded_solver = fast_solver(cost_model8, backend="greedy")
        pending = seeded_solver.pending_shapes(batch)
        for shape, outcome in zip(
            pending, seeded_solver.plan_shapes_cold(pending)
        ):
            seeded_solver.seed_plan(shape, outcome)
        seeded = seeded_solver.solve(batch)
        assert seeded.predicted_time == cold.predicted_time
        assert seeded.microbatches == cold.microbatches

    def test_pending_probe_leaves_solve_stats_untouched(self, cost_model8):
        batch = SequenceBatch(lengths=(4096, 8192, 2048, 1024) * 2)
        probed = fast_solver(cost_model8, backend="greedy")
        probed.pending_shapes(batch)
        probed.pending_shapes(batch)  # idempotent, no counter drift
        unprobed = fast_solver(cost_model8, backend="greedy")
        a = probed.solve(batch)
        b = unprobed.solve(batch)
        assert a.stats.cache_hits == b.stats.cache_hits
        assert a.stats.cache_misses == b.stats.cache_misses

    def test_disabled_cache_reports_nothing_pending(self, cost_model8):
        solver = fast_solver(cost_model8, backend="greedy", plan_cache=False)
        assert solver.pending_shapes((4096, 2048, 1024)) == []


class TestStageBreakdown:
    def test_greedy_solve_records_enumerate_and_lpt(self, cost_model8):
        batch = SequenceBatch(lengths=(4096, 8192, 2048, 1024, 512) * 3)
        result = fast_solver(cost_model8, backend="greedy").solve(batch)
        stages = result.stats.stage_seconds()
        assert stages["lpt"] > 0.0
        assert stages["milp_solve"] == 0.0

    def test_milp_solve_records_build_and_solve(self, cost_model8):
        batch = SequenceBatch(lengths=(4096, 8192, 2048, 1024, 512) * 3)
        result = fast_solver(cost_model8, backend="milp").solve(batch)
        stages = result.stats.stage_seconds()
        assert stages["milp_build"] > 0.0
        assert stages["milp_solve"] > 0.0

    def test_pooled_planning_ships_stage_timings_home(self, cost_model8):
        batch = SequenceBatch(lengths=(4096, 2048, 1024, 8192) * 2)
        with fast_solver(cost_model8, backend="greedy", workers=2) as solver:
            result = solver.solve(batch)
        stages = result.stats.stage_seconds()
        assert stages["lpt"] > 0.0

    def test_warm_solve_spends_no_stage_time(self, cost_model8):
        batch = SequenceBatch(lengths=(4096, 8192, 2048, 1024) * 2)
        solver = fast_solver(cost_model8, backend="greedy")
        solver.solve(batch)
        warm = solver.solve(batch)
        assert warm.stats.stage_seconds() == {
            "enumerate": 0.0,
            "lpt": 0.0,
            "milp_build": 0.0,
            "milp_solve": 0.0,
        }
