"""Property-based tests for sequence packing (hypothesis)."""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.data.packing import best_fit_decreasing, first_fit_decreasing


@st.composite
def lengths_and_capacity(draw):
    capacity = draw(st.integers(min_value=10, max_value=10_000))
    lengths = draw(
        st.lists(
            st.integers(min_value=1, max_value=capacity), min_size=1, max_size=100
        )
    )
    return lengths, capacity


@given(lengths_and_capacity())
@settings(max_examples=100, deadline=None)
def test_bfd_conserves_sequences(case):
    lengths, capacity = case
    packs = best_fit_decreasing(lengths, capacity)
    packed = sorted(s for p in packs for s in p.lengths)
    assert packed == sorted(lengths)


@given(lengths_and_capacity())
@settings(max_examples=100, deadline=None)
def test_bfd_respects_capacity(case):
    lengths, capacity = case
    for pack in best_fit_decreasing(lengths, capacity):
        assert 0 < pack.used <= capacity


@given(lengths_and_capacity())
@settings(max_examples=100, deadline=None)
def test_bfd_lower_bound_on_pack_count(case):
    """No packing can use fewer than ceil(total / capacity) packs."""
    lengths, capacity = case
    packs = best_fit_decreasing(lengths, capacity)
    assert len(packs) >= -(-sum(lengths) // capacity)


@given(lengths_and_capacity())
@settings(max_examples=100, deadline=None)
def test_bfd_half_full_bound(case):
    """Since any two BFD packs jointly overflow capacity, at most one
    pack is half-empty, bounding the count by 2 * volume / capacity + 1."""
    lengths, capacity = case
    packs = best_fit_decreasing(lengths, capacity)
    assert len(packs) <= 2 * sum(lengths) / capacity + 1


@given(lengths_and_capacity())
@settings(max_examples=100, deadline=None)
def test_bfd_matches_ffd_conservation(case):
    """BFD and FFD pack the same multiset (pack counts may differ)."""
    lengths, capacity = case
    bfd = best_fit_decreasing(lengths, capacity)
    ffd = first_fit_decreasing(lengths, capacity)
    assert sorted(s for p in bfd for s in p.lengths) == sorted(
        s for p in ffd for s in p.lengths
    )


@given(lengths_and_capacity())
@settings(max_examples=60, deadline=None)
def test_bfd_no_two_packs_mergeable(case):
    """Optimality sanity: BFD never leaves two packs that could merge
    into one (their combined load fitting capacity) when one holds a
    single smallest item... weaker invariant: the *two emptiest* packs
    cannot both be half-empty unless there is only one pack."""
    lengths, capacity = case
    packs = best_fit_decreasing(lengths, capacity)
    if len(packs) >= 2:
        loads = sorted(p.used for p in packs)
        # The fullest and emptiest pack cannot be merged only if their
        # sum exceeds capacity OR every pack pair overflows; check the
        # two emptiest — if they fit together, BFD would have merged.
        assert loads[0] + loads[1] > capacity or len(packs) == 1
