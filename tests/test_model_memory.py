"""Tests for repro.model.memory: model-state and activation accounting."""

import pytest

from repro.model.config import GPT_7B, GPT_13B, GPT_30B
from repro.model.memory import (
    ActivationCheckpointing,
    activation_bytes_per_token,
    default_checkpointing,
    model_state_bytes,
    model_state_bytes_per_device,
)


class TestModelStates:
    def test_sixteen_bytes_per_parameter(self):
        assert model_state_bytes(GPT_7B) == 16 * GPT_7B.parameter_count()

    def test_zero3_shards_everything(self):
        per_device = model_state_bytes_per_device(GPT_7B, 64, zero_stage=3)
        assert per_device == pytest.approx(model_state_bytes(GPT_7B) / 64)

    def test_zero1_shards_only_optimizer(self):
        params = GPT_7B.parameter_count()
        per_device = model_state_bytes_per_device(GPT_7B, 64, zero_stage=1)
        assert per_device == pytest.approx(4 * params + 12 * params / 64)

    def test_zero0_replicates_everything(self):
        per_device = model_state_bytes_per_device(GPT_7B, 64, zero_stage=0)
        assert per_device == model_state_bytes(GPT_7B)

    def test_stage_monotonicity(self):
        values = [
            model_state_bytes_per_device(GPT_7B, 64, zero_stage=stage)
            for stage in (0, 1, 2, 3)
        ]
        assert values == sorted(values, reverse=True)
        assert values[0] > values[3]

    def test_rejects_bad_stage(self):
        with pytest.raises(ValueError, match="zero_stage"):
            model_state_bytes_per_device(GPT_7B, 64, zero_stage=4)

    def test_rejects_nonpositive_devices(self):
        with pytest.raises(ValueError, match="num_devices"):
            model_state_bytes_per_device(GPT_7B, 0)


class TestActivations:
    def test_checkpointing_reduces_footprint(self):
        none = activation_bytes_per_token(GPT_7B, ActivationCheckpointing.NONE)
        selective = activation_bytes_per_token(
            GPT_7B, ActivationCheckpointing.SELECTIVE
        )
        full = activation_bytes_per_token(GPT_7B, ActivationCheckpointing.FULL)
        assert none > selective > full

    def test_gpt7b_roughly_4mb_per_token(self):
        """34 * h * L bytes: the figure behind Table 1's OOM frontier."""
        per_token = activation_bytes_per_token(GPT_7B)
        assert per_token == pytest.approx(34 * 4096 * 32, rel=1e-6)

    def test_scales_with_model_size(self):
        assert activation_bytes_per_token(GPT_30B) > activation_bytes_per_token(
            GPT_7B
        )


class TestDefaultCheckpointing:
    """Appendix B.2: no ckpt for 7B, MLP-only for 13B, full for 30B."""

    def test_gpt7b_no_checkpointing(self):
        policy = default_checkpointing(GPT_7B, 384 * 1024)
        assert policy is ActivationCheckpointing.NONE

    def test_gpt13b_selective_at_long_context(self):
        policy = default_checkpointing(GPT_13B, 384 * 1024)
        assert policy is ActivationCheckpointing.SELECTIVE

    def test_gpt13b_relaxed_at_short_context(self):
        policy = default_checkpointing(GPT_13B, 64 * 1024)
        assert policy is ActivationCheckpointing.NONE

    def test_gpt30b_full(self):
        policy = default_checkpointing(GPT_30B, 384 * 1024)
        assert policy is ActivationCheckpointing.FULL


class TestTable1OOMFrontier:
    """The Table 1 OOM pattern must fall out of the memory numbers.

    On A100-40GB with ZeRO-3 over 64 GPUs: a 32K sequence fits at SP=8
    but not SP=4; 64K needs SP>=16; 128K needs SP>=32; 256K needs SP=64.
    """

    @pytest.fixture()
    def budget(self):
        from repro.cluster.device import A100_40GB

        return A100_40GB.usable_memory_bytes

    @pytest.fixture()
    def m_token(self):
        return activation_bytes_per_token(GPT_7B.with_max_context(384 * 1024))

    @pytest.fixture()
    def m_ms(self):
        return model_state_bytes_per_device(
            GPT_7B.with_max_context(384 * 1024), 64, zero_stage=3
        )

    @pytest.mark.parametrize(
        "seq_len,oom_degree,ok_degree",
        [
            (32 * 1024, 4, 8),
            (64 * 1024, 8, 16),
            (128 * 1024, 16, 32),
            (256 * 1024, 32, 64),
        ],
    )
    def test_frontier(self, budget, m_token, m_ms, seq_len, oom_degree, ok_degree):
        oom_usage = seq_len / oom_degree * m_token + m_ms
        ok_usage = seq_len / ok_degree * m_token + m_ms
        assert oom_usage > budget, f"{seq_len} @ SP={oom_degree} should OOM"
        assert ok_usage <= budget, f"{seq_len} @ SP={ok_degree} should fit"
