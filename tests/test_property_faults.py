"""Property-based chaos: any single fault must be survivable.

The fault plane's whole-system invariant, stated as a Hypothesis
property: for *any* one fault drawn from the survivable menu (kind,
site, occurrence), a parallel sweep under that schedule produces
metrics **bit-identical** to the fault-free serial pass, and leaves no
worker pool behind (``live_pool_count`` returns to its baseline).
This is the randomized counterpart of the fixed schedules in
``benchmarks/test_bench_chaos.py`` — Hypothesis picks the fault, the
ladder has to hold regardless.

Examples are expensive (each one is a parallel sweep with a real
worker kill / hang / torn write), so the example budget is small and
the grid is the suite's standard two-workload 8-GPU shape.
"""

from __future__ import annotations

import tempfile

import hypothesis.strategies as st
import pytest
from hypothesis import given, settings

from repro.cluster.topology import standard_cluster
from repro.core.faults import FaultSchedule, FaultSpec
from repro.core.pools import live_pool_count
from repro.core.solver import SolverConfig
from repro.data.distributions import COMMONCRAWL, GITHUB
from repro.experiments.sweep import SweepRunner, grid_cells
from repro.experiments.workloads import Workload
from repro.model.config import GPT_7B

SOLVER = SolverConfig(backend="greedy", num_trials=2)

#: (kind, site) pairs the property draws from — every member must be
#: survivable by the graduated recovery ladder at every occurrence.
SURVIVABLE = (
    ("worker_kill", "cell"),
    ("worker_kill", "spawn"),
    ("worker_kill", "drain"),
    ("hang", "cell"),
    ("torn_write", "spill"),
    ("stale_lock", "lock"),
)

fault_strategy = st.builds(
    lambda pair, occurrence: FaultSpec(
        kind=pair[0], site=pair[1], occurrence=occurrence
    ),
    pair=st.sampled_from(SURVIVABLE),
    occurrence=st.integers(min_value=0, max_value=2),
)


def _cells():
    workloads = [
        Workload(
            model=GPT_7B,
            distribution=distribution,
            max_context=32 * 1024,
            cluster=standard_cluster(8),
            global_batch_size=16,
        )
        for distribution in (GITHUB, COMMONCRAWL)
    ]
    return grid_cells(["flexsp", "deepspeed"], workloads)


@pytest.fixture(scope="module")
def serial_reference():
    """The fault-free serial pass every chaotic run must reproduce."""
    result = SweepRunner(_cells(), solver_config=SOLVER, workers=1).run()
    return [m.deterministic() for m in result.metrics]


class TestAnySingleFaultIsSurvivable:
    @given(spec=fault_strategy)
    @settings(max_examples=5, deadline=None)
    def test_bit_identical_and_no_pool_leaks(self, serial_reference, spec):
        schedule = FaultSchedule(specs=(spec,), hang_seconds=30.0)
        baseline_pools = live_pool_count()
        # A store inside the example (not a function fixture: Hypothesis
        # reuses fixtures across examples) so torn_write / stale_lock
        # have a spill path to corrupt.
        with tempfile.TemporaryDirectory() as store_root:
            with SweepRunner(
                _cells(),
                solver_config=SOLVER,
                workers=2,
                store=store_root,
                fault_schedule=schedule,
                watchdog_seconds=2.0,
            ) as runner:
                result = runner.run()
        assert [
            m.deterministic() for m in result.metrics
        ] == serial_reference
        assert live_pool_count() == baseline_pools
        # Recovery is accounted whenever the fault actually fired.
        stats = result.fault_stats
        assert stats is not None
        if spec.kind == "hang" and stats.total_injections:
            assert stats.watchdog_kills >= 1
