"""Tests for repro.simulator.timeline: ASCII Gantt rendering."""

import pytest

from repro.core.types import GroupAssignment, IterationPlan, MicroBatchPlan
from repro.model.config import GPT_7B
from repro.simulator.executor import IterationExecutor
from repro.simulator.timeline import GLYPHS, render_timeline
from repro.simulator.trace import PhaseKind, TracePhase, TraceRecorder


def _synthetic_trace():
    trace = TraceRecorder(total_devices=8)
    trace.record(TracePhase(PhaseKind.COMPUTE, 0.0, 2.0, 4, 0, 4))
    trace.record(TracePhase(PhaseKind.ALLTOALL, 2.0, 1.0, 4, 0, 4))
    trace.record(TracePhase(PhaseKind.COMPUTE, 0.0, 1.0, 4, 0, 2))
    trace.record(TracePhase(PhaseKind.IDLE, 1.0, 2.0, 4, 0, 2))
    trace.record(TracePhase(PhaseKind.GRAD_SYNC, 3.0, 0.5, 8))
    return trace


class TestRendering:
    def test_empty_trace(self):
        assert "empty" in render_timeline(TraceRecorder(total_devices=4))

    def test_rows_and_legend(self):
        text = render_timeline(_synthetic_trace(), width=40)
        lines = text.splitlines()
        assert any("mb0 SP=4" in line for line in lines)
        assert any("mb0 SP=2" in line for line in lines)
        assert any("cluster" in line for line in lines)
        assert "C=compute" in lines[-1]

    def test_glyph_order_within_row(self):
        text = render_timeline(_synthetic_trace(), width=40)
        row = next(l for l in text.splitlines() if "SP=4" in l)
        chart = row.split("[")[1].rstrip("]")
        assert chart.index("C") < chart.index("A")

    def test_width_respected(self):
        text = render_timeline(_synthetic_trace(), width=25)
        for line in text.splitlines()[:-1]:
            chart = line.split("[")[1].rstrip("]")
            assert len(chart) == 25

    def test_rejects_bad_width(self):
        with pytest.raises(ValueError, match="width"):
            render_timeline(_synthetic_trace(), width=0)

    def test_every_kind_has_glyph(self):
        assert set(GLYPHS) == set(PhaseKind)


class TestOnRealExecution:
    def test_renders_executor_trace(self, cluster16):
        config = GPT_7B.with_max_context(64 * 1024)
        executor = IterationExecutor(config=config, cluster=cluster16)
        plan = IterationPlan(
            microbatches=(
                MicroBatchPlan(
                    groups=(
                        GroupAssignment(degree=8, device_ranks=tuple(range(8)),
                                        lengths=(16384,)),
                        GroupAssignment(degree=8, device_ranks=tuple(range(8, 16)),
                                        lengths=(2048,)),
                    )
                ),
            )
        )
        result = executor.run(plan)
        text = render_timeline(result.trace)
        assert "mb0 SP=8" in text
        # The straggler row shows All-to-All and the light row idles.
        assert "A" in text
        assert "." in text
