"""Tests for repro.cluster.collectives: collective timing."""

import pytest

from repro.cluster.collectives import (
    all_gather_time,
    all_reduce_time,
    all_to_all_time,
    reduce_scatter_time,
    ring_p2p_time,
)
from repro.cluster.network import LinkSpec

LINK = LinkSpec(name="test", bandwidth=100e9, latency=10e-6)


class TestAllToAll:
    def test_single_member_is_free(self):
        assert all_to_all_time(1e9, 1, LINK) == 0.0

    def test_wire_fraction(self):
        """Each GPU exchanges (p-1)/p of its buffer."""
        t = all_to_all_time(100e9, 4, LINK)
        assert t == pytest.approx(LINK.latency + 0.75 * 100e9 / LINK.bandwidth)

    def test_grows_with_group_size(self):
        times = [all_to_all_time(1e9, p, LINK) for p in (2, 4, 8, 64)]
        assert times == sorted(times)

    def test_rejects_negative_bytes(self):
        with pytest.raises(ValueError, match="nbytes"):
            all_to_all_time(-1, 4, LINK)

    def test_rejects_nonpositive_group(self):
        with pytest.raises(ValueError, match="group_size"):
            all_to_all_time(1e6, 0, LINK)


class TestRingCollectives:
    def test_all_gather_single_member_free(self):
        assert all_gather_time(1e9, 1, LINK) == 0.0

    def test_all_gather_latency_scales_with_steps(self):
        small = all_gather_time(0, 2, LINK)
        large = all_gather_time(0, 8, LINK)
        assert large == pytest.approx(7 * small / 1)

    def test_reduce_scatter_equals_all_gather(self):
        assert reduce_scatter_time(5e8, 8, LINK) == all_gather_time(5e8, 8, LINK)

    def test_all_reduce_twice_the_volume(self):
        ag = all_gather_time(1e9, 8, LINK)
        ar = all_reduce_time(1e9, 8, LINK)
        assert ar == pytest.approx(2 * ag, rel=1e-9)


class TestRingP2P:
    def test_single_member_free(self):
        assert ring_p2p_time(1e6, 1, LINK) == 0.0

    def test_steps_scale_with_group(self):
        t4 = ring_p2p_time(1e6, 4, LINK)
        t8 = ring_p2p_time(1e6, 8, LINK)
        assert t8 == pytest.approx(t4 * 7 / 3)

    def test_volume_linear(self):
        assert ring_p2p_time(2e6, 4, LINK) > ring_p2p_time(1e6, 4, LINK)
