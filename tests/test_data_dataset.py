"""Tests for repro.data.dataset: the synthetic corpus."""

import pytest

from repro.data.dataset import GlobalBatch, SyntheticCorpus
from repro.data.distributions import COMMONCRAWL, GITHUB


class TestGlobalBatch:
    def test_aggregates(self):
        batch = GlobalBatch(lengths=(100, 200, 300))
        assert batch.num_sequences == 3
        assert batch.total_tokens == 600
        assert batch.max_length == 300

    def test_rejects_empty(self):
        with pytest.raises(ValueError, match="at least one"):
            GlobalBatch(lengths=())

    def test_rejects_nonpositive_lengths(self):
        with pytest.raises(ValueError, match="positive"):
            GlobalBatch(lengths=(100, 0))


class TestSyntheticCorpus:
    def test_batch_size_exact(self):
        corpus = SyntheticCorpus(COMMONCRAWL, max_context=64 * 1024,
                                 global_batch_size=128)
        assert corpus.batch(0).num_sequences == 128

    def test_context_limit_enforced(self):
        """Over-length sequences are eliminated (the paper's protocol)."""
        corpus = SyntheticCorpus(GITHUB, max_context=8 * 1024,
                                 global_batch_size=512)
        for step in range(3):
            assert corpus.batch(step).max_length <= 8 * 1024

    def test_deterministic_given_seed_and_step(self):
        a = SyntheticCorpus(COMMONCRAWL, max_context=64 * 1024, seed=3)
        b = SyntheticCorpus(COMMONCRAWL, max_context=64 * 1024, seed=3)
        assert a.batch(5).lengths == b.batch(5).lengths

    def test_steps_differ(self):
        corpus = SyntheticCorpus(COMMONCRAWL, max_context=64 * 1024)
        assert corpus.batch(0).lengths != corpus.batch(1).lengths

    def test_seeds_differ(self):
        a = SyntheticCorpus(COMMONCRAWL, max_context=64 * 1024, seed=0)
        b = SyntheticCorpus(COMMONCRAWL, max_context=64 * 1024, seed=1)
        assert a.batch(0).lengths != b.batch(0).lengths

    def test_batches_generator(self):
        corpus = SyntheticCorpus(COMMONCRAWL, max_context=64 * 1024,
                                 global_batch_size=32)
        batches = list(corpus.batches(3, start_step=2))
        assert [b.step for b in batches] == [2, 3, 4]

    def test_rejects_negative_step(self):
        corpus = SyntheticCorpus(COMMONCRAWL, max_context=64 * 1024)
        with pytest.raises(ValueError, match="step"):
            corpus.batch(-1)

    def test_rejects_bad_construction(self):
        with pytest.raises(ValueError, match="max_context"):
            SyntheticCorpus(COMMONCRAWL, max_context=0)
        with pytest.raises(ValueError, match="global_batch_size"):
            SyntheticCorpus(COMMONCRAWL, max_context=1024, global_batch_size=0)

    def test_sample_lengths_unfiltered(self):
        """Fig. 2 plots the raw marginal, not the filtered stream."""
        corpus = SyntheticCorpus(GITHUB, max_context=4 * 1024)
        raw = corpus.sample_lengths(50_000)
        assert raw.max() > 4 * 1024
