"""Tests for repro.data.packing: best-fit / first-fit packing."""

import random

import pytest

from repro.data.packing import (
    Pack,
    best_fit_decreasing,
    first_fit_decreasing,
    pack_efficiency,
)


def naive_first_fit_decreasing(lengths, capacity):
    """The O(K²) scan the tournament-tree implementation replaced."""
    packs = []
    for s in sorted(lengths, reverse=True):
        for pack in packs:
            if pack.remaining >= s:
                pack.add(s)
                break
        else:
            packs.append(Pack(capacity=capacity, lengths=[s]))
    return packs


class TestPack:
    def test_accounting(self):
        pack = Pack(capacity=100, lengths=[30, 20])
        assert pack.used == 50
        assert pack.remaining == 50

    def test_add_respects_capacity(self):
        pack = Pack(capacity=100, lengths=[90])
        with pytest.raises(ValueError, match="does not fit"):
            pack.add(20)


class TestBestFitDecreasing:
    def test_all_sequences_packed(self):
        lengths = [50, 30, 70, 20, 90, 10]
        packs = best_fit_decreasing(lengths, capacity=100)
        packed = sorted(s for p in packs for s in p.lengths)
        assert packed == sorted(lengths)

    def test_no_pack_overflows(self):
        packs = best_fit_decreasing(list(range(1, 60)), capacity=100)
        assert all(p.used <= p.capacity for p in packs)

    def test_perfect_fit(self):
        packs = best_fit_decreasing([60, 40, 70, 30], capacity=100)
        assert len(packs) == 2
        assert all(p.used == 100 for p in packs)

    def test_best_fit_chooses_tightest_bin(self):
        # After placing 70 and 60, a 40 fits only with the 60; a naive
        # first-fit-any order could leave worse fragmentation.
        packs = best_fit_decreasing([70, 60, 40, 30], capacity=100)
        assert len(packs) == 2

    def test_single_sequence_per_oversized_pack(self):
        packs = best_fit_decreasing([100, 100], capacity=100)
        assert len(packs) == 2

    def test_rejects_over_capacity_sequence(self):
        with pytest.raises(ValueError, match="exceeds pack capacity"):
            best_fit_decreasing([101], capacity=100)

    def test_rejects_nonpositive_capacity(self):
        with pytest.raises(ValueError, match="capacity"):
            best_fit_decreasing([1], capacity=0)

    def test_rejects_nonpositive_length(self):
        with pytest.raises(ValueError, match="positive"):
            best_fit_decreasing([0], capacity=10)

    def test_empty_input(self):
        assert best_fit_decreasing([], capacity=10) == []

    def test_matches_first_fit_pack_conservation(self):
        lengths = [13, 47, 22, 91, 8, 64, 33, 29, 55]
        bfd = best_fit_decreasing(lengths, capacity=100)
        ffd = first_fit_decreasing(lengths, capacity=100)
        assert sum(p.used for p in bfd) == sum(p.used for p in ffd) == sum(lengths)

    def test_never_more_packs_than_sequences(self):
        lengths = [10] * 25
        packs = best_fit_decreasing(lengths, capacity=100)
        assert len(packs) == 3  # 10 per pack, 25 items -> ceil(25/10)


class TestFirstFitDecreasing:
    def test_identical_assignments_to_naive_scan(self):
        """The segment-tree FFD must place every sequence in exactly
        the pack the naive first-pack-that-fits scan would pick."""
        rng = random.Random(41)
        for __ in range(60):
            capacity = rng.randint(10, 2000)
            lengths = [
                rng.randint(1, capacity) for __ in range(rng.randint(0, 200))
            ]
            fast = first_fit_decreasing(lengths, capacity)
            naive = naive_first_fit_decreasing(lengths, capacity)
            assert [p.lengths for p in fast] == [p.lengths for p in naive]

    def test_many_pack_growth(self):
        """Singleton packs force repeated tournament-tree doubling."""
        lengths = [100] * 37
        packs = first_fit_decreasing(lengths, capacity=100)
        assert len(packs) == 37
        assert all(p.lengths == [100] for p in packs)

    def test_empty_input(self):
        assert first_fit_decreasing([], capacity=10) == []

    def test_rejects_over_capacity_sequence(self):
        with pytest.raises(ValueError, match="exceeds pack capacity"):
            first_fit_decreasing([101], capacity=100)

    def test_first_fit_prefers_lowest_index(self):
        # 60 opens pack 0; 50 opens pack 1 (60+50 > 100); the 30 fits
        # both (rem 40 and 50) and first-fit must take pack 0.
        packs = first_fit_decreasing([60, 50, 30], capacity=100)
        assert [p.lengths for p in packs] == [[60, 30], [50]]


class TestEfficiency:
    def test_full_packs(self):
        packs = best_fit_decreasing([50, 50], capacity=100)
        assert pack_efficiency(packs) == 1.0

    def test_rejects_empty(self):
        with pytest.raises(ValueError, match="empty"):
            pack_efficiency([])

    def test_bfd_at_least_half_efficient(self):
        """Classic bin-packing bound: BFD wastes less than half."""
        lengths = [37, 81, 12, 55, 43, 66, 29, 94, 18, 71] * 5
        packs = best_fit_decreasing(lengths, capacity=100)
        assert pack_efficiency(packs) > 0.5
