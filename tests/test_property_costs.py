"""Property-based tests for the cost model and simulator timing."""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.simulator.timing import group_alltoall_time, group_compute_time

lengths_strategy = st.lists(
    st.integers(min_value=16, max_value=50_000), min_size=1, max_size=10
)
degree_strategy = st.sampled_from([1, 2, 4, 8, 16])


class TestCostModelProperties:
    @given(lengths=lengths_strategy, degree=degree_strategy)
    @settings(max_examples=100, deadline=None)
    def test_time_positive(self, cost_model16, lengths, degree):
        assert cost_model16.time(lengths, degree) > 0

    @given(lengths=lengths_strategy, degree=degree_strategy)
    @settings(max_examples=100, deadline=None)
    def test_memory_monotone_in_tokens(self, cost_model16, lengths, degree):
        base = cost_model16.memory(lengths, degree)
        more = cost_model16.memory(lengths + [1024], degree)
        assert more > base

    @given(lengths=lengths_strategy, degree=degree_strategy)
    @settings(max_examples=100, deadline=None)
    def test_compute_monotone_in_degree(self, cost_model16, lengths, degree):
        """More devices never increase Eq. 12's compute time."""
        if degree < 16:
            slower = cost_model16.compute_time(lengths, degree)
            faster = cost_model16.compute_time(lengths, degree * 2)
            assert faster <= slower + 1e-12

    @given(lengths=lengths_strategy, degree=degree_strategy)
    @settings(max_examples=100, deadline=None)
    def test_memory_monotone_in_degree(self, cost_model16, lengths, degree):
        """Scattering over more devices never increases per-device memory."""
        if degree < 16:
            assert cost_model16.memory(lengths, degree * 2) <= cost_model16.memory(
                lengths, degree
            )

    @given(lengths=lengths_strategy)
    @settings(max_examples=50, deadline=None)
    def test_time_additivity_direction(self, cost_model16, lengths):
        """Splitting a workload across two groups of the same degree
        can only reduce the per-group time (superadditivity of load)."""
        whole = cost_model16.time(lengths, 8)
        half = cost_model16.time(lengths[: max(1, len(lengths) // 2)], 8)
        assert half <= whole + 1e-12


class TestSimulatorTimingProperties:
    @given(lengths=lengths_strategy, degree=degree_strategy)
    @settings(max_examples=60, deadline=None)
    def test_compute_positive_and_finite(
        self, cluster16, gpt7b_64k, lengths, degree
    ):
        t = group_compute_time(gpt7b_64k, cluster16, lengths, degree)
        assert 0 < t < 1e4

    @given(
        tokens=st.integers(min_value=1, max_value=500_000),
        degree=degree_strategy,
    )
    @settings(max_examples=60, deadline=None)
    def test_alltoall_nonnegative(self, cluster16, gpt7b_64k, tokens, degree):
        assert group_alltoall_time(gpt7b_64k, cluster16, tokens, degree) >= 0

    @given(tokens=st.integers(min_value=1000, max_value=500_000))
    @settings(max_examples=60, deadline=None)
    def test_alltoall_monotone_in_tokens(self, cluster16, gpt7b_64k, tokens):
        t1 = group_alltoall_time(gpt7b_64k, cluster16, tokens, 8)
        t2 = group_alltoall_time(gpt7b_64k, cluster16, tokens * 2, 8)
        assert t2 >= t1
