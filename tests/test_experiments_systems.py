"""Tests for repro.experiments.systems: the unified system wrappers.

Uses a small 16-GPU, 32K-context, batch-32 workload so every system
runs in well under a second of host time per iteration.
"""

import pytest

from repro.core.planner import PlannerConfig
from repro.core.solver import SolverConfig
from repro.data.distributions import COMMONCRAWL
from repro.experiments.systems import (
    DeepSpeedUlyssesSystem,
    FlexSPBatchAdaSystem,
    FlexSPSystem,
    MegatronLMSystem,
    build_system,
)
from repro.experiments.workloads import Workload
from repro.model.config import GPT_7B


@pytest.fixture(scope="module")
def small_workload(cluster16):
    return Workload(
        model=GPT_7B,
        distribution=COMMONCRAWL,
        max_context=32 * 1024,
        cluster=cluster16,
        global_batch_size=32,
    )


@pytest.fixture(scope="module")
def fast_solver_config():
    return SolverConfig(
        num_trials=2, planner=PlannerConfig(time_limit=0.5, mip_rel_gap=0.05)
    )


@pytest.fixture(scope="module")
def batch(small_workload):
    return small_workload.corpus().batch(0).lengths


class TestFlexSPSystem:
    def test_outcome_fields(self, small_workload, fast_solver_config, batch):
        system = FlexSPSystem(small_workload, fast_solver_config)
        outcome = system.run_iteration(batch)
        assert outcome.iteration_seconds > 0
        assert outcome.solve_seconds > 0
        assert outcome.num_microbatches >= 1
        assert outcome.plan is not None

    def test_plan_covers_batch(self, small_workload, fast_solver_config, batch):
        system = FlexSPSystem(small_workload, fast_solver_config)
        plan, __ = system.plan(batch)
        planned = sorted(
            s for mb in plan.microbatches for g in mb.groups for s in g.lengths
        )
        assert planned == sorted(batch)


class TestDeepSpeedSystem:
    def test_static_degree_covers_worst_case(self, small_workload, batch):
        system = DeepSpeedUlyssesSystem(small_workload)
        assert system.cost_model.fits([small_workload.max_context], system.sp_degree)

    def test_explicit_degree_respected(self, small_workload, batch):
        system = DeepSpeedUlyssesSystem(small_workload, sp_degree=16)
        outcome = system.run_iteration(batch)
        assert outcome.iteration_seconds > 0
        for mb in outcome.plan.microbatches:
            assert all(g.degree == 16 for g in mb.groups)

    def test_no_solve_overhead(self, small_workload, batch):
        system = DeepSpeedUlyssesSystem(small_workload, sp_degree=16)
        assert system.run_iteration(batch).solve_seconds == 0.0


class TestBatchAdaSystem:
    def test_homogeneous_within_batch(self, small_workload, batch):
        system = FlexSPBatchAdaSystem(small_workload)
        outcome = system.run_iteration(batch)
        degrees = {
            g.degree for mb in outcome.plan.microbatches for g in mb.groups
        }
        assert len(degrees) == 1


class TestMegatronSystem:
    def test_outcome_has_no_alltoall(self, small_workload, batch):
        system = MegatronLMSystem(small_workload)
        outcome = system.run_iteration(batch)
        assert outcome.alltoall_seconds == 0.0
        assert outcome.comm_seconds > 0

    def test_explicit_strategy_respected(self, small_workload, batch):
        from repro.baselines.megatron import MegatronStrategy

        strategy = MegatronStrategy(tp=8, cp=2, dp=1)
        system = MegatronLMSystem(small_workload, strategy=strategy)
        assert system.strategy is strategy
        assert system.run_iteration(batch).iteration_seconds > 0


class TestBuildSystem:
    def test_builds_all_known(self, small_workload, fast_solver_config):
        flexsp = build_system(
            "flexsp", small_workload, solver_config=fast_solver_config
        )
        assert flexsp.name == "FlexSP"
        assert build_system("deepspeed", small_workload).name == "DeepSpeed"
        assert build_system("batchada", small_workload).name == "FlexSP-BatchAda"
        assert build_system("megatron", small_workload).name == "Megatron-LM"

    def test_rejects_unknown(self, small_workload):
        with pytest.raises(ValueError, match="unknown system"):
            build_system("pytorch", small_workload)
