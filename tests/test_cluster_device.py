"""Tests for repro.cluster.device: GPU specifications."""

import pytest

from repro.cluster.device import A100_40GB, A100_80GB, H100_80GB, GPUSpec


class TestGPUSpecValidation:
    def test_rejects_nonpositive_flops(self):
        with pytest.raises(ValueError, match="peak_flops"):
            GPUSpec(name="bad", peak_flops=0, memory_bytes=1e9)

    def test_rejects_nonpositive_memory(self):
        with pytest.raises(ValueError, match="memory_bytes"):
            GPUSpec(name="bad", peak_flops=1e12, memory_bytes=0)

    def test_rejects_mfu_out_of_range(self):
        with pytest.raises(ValueError, match="mfu"):
            GPUSpec(name="bad", peak_flops=1e12, memory_bytes=1e9, mfu=1.5)
        with pytest.raises(ValueError, match="mfu"):
            GPUSpec(name="bad", peak_flops=1e12, memory_bytes=1e9, mfu=0.0)

    def test_rejects_reserve_exceeding_memory(self):
        with pytest.raises(ValueError, match="reserved_bytes"):
            GPUSpec(
                name="bad", peak_flops=1e12, memory_bytes=1e9, reserved_bytes=2e9
            )


class TestPresets:
    def test_a100_40gb_capacity(self):
        assert A100_40GB.memory_bytes == 40 * 1024**3
        assert A100_40GB.peak_flops == 312e12

    def test_usable_memory_below_capacity(self):
        assert 0 < A100_40GB.usable_memory_bytes < A100_40GB.memory_bytes

    def test_effective_flops_below_peak(self):
        assert 0 < A100_40GB.effective_flops < A100_40GB.peak_flops

    def test_a100_80gb_doubles_memory(self):
        assert A100_80GB.memory_bytes == 2 * A100_40GB.memory_bytes
        assert A100_80GB.peak_flops == A100_40GB.peak_flops

    def test_h100_faster(self):
        assert H100_80GB.effective_flops > A100_40GB.effective_flops
