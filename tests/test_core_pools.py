"""Tests for repro.core.pools under the sharded sweep dispatcher.

The lifecycle guard is exercised indirectly by every fan-out suite;
these tests pin the contracts the scale-out executor leans on:
``close()`` racing a ``run()`` resolves through the broken-pool retry,
the per-worker exit flush lands batched spills that a best-effort
drain missed, and the pool registry returns to baseline once a
campaign's runner is closed.
"""

from __future__ import annotations

import os

import pytest

from repro.core import pools
from repro.core.solver import SolverConfig
from repro.cluster.topology import standard_cluster
from repro.data.distributions import GITHUB
from repro.experiments.sweep import SweepRunner, grid_cells
from repro.experiments.workloads import Workload
from repro.model.config import GPT_7B

SOLVER = SolverConfig(backend="greedy", num_trials=2)


@pytest.fixture(scope="module")
def workload():
    return Workload(
        model=GPT_7B,
        distribution=GITHUB,
        max_context=32 * 1024,
        cluster=standard_cluster(8),
        global_batch_size=16,
    )


class TestSlotLifecycle:
    def test_run_survives_a_concurrent_close(self, workload):
        # A close() that lands between dispatches shuts the slot pools
        # down under the scheduler's feet; the next submit then raises
        # the pool's RuntimeError, which the runner normalises to
        # BrokenProcessPool and retries on fresh slots.  Simulate the
        # race deterministically: warm the slots, then shut the pools
        # down directly (without clearing the runner's slot table, as
        # a concurrent close would have after the dispatch read it).
        cells = grid_cells(["flexsp", "deepspeed"], [workload])
        with SweepRunner(
            cells, solver_config=SOLVER, workers=2
        ) as runner:
            first = runner.run()
            for pool in runner._slots:
                pool.shutdown()
            second = runner.run()
            for a, b in zip(first.metrics, second.metrics):
                assert a.deterministic() == b.deterministic()
            # The retry recreated live slot pools.
            assert all(pool is not None for pool in runner._slots)

    def test_live_pool_count_returns_to_baseline(self, workload):
        baseline = pools.live_pool_count()
        runner = SweepRunner(
            grid_cells(["deepspeed"], [workload]),
            solver_config=SOLVER,
            workers=2,
        )
        runner.run()
        assert pools.live_pool_count() > baseline
        runner.close()
        assert pools.live_pool_count() == baseline

    def test_close_is_idempotent(self, workload):
        baseline = pools.live_pool_count()
        runner = SweepRunner(
            grid_cells(["deepspeed"], [workload]),
            solver_config=SOLVER,
            workers=2,
        )
        runner.run()
        runner.close()
        runner.close()
        assert pools.live_pool_count() == baseline


class TestWorkerExitFlush:
    def test_exit_flush_lands_batched_spills(self, workload, tmp_path):
        # A spill batch larger than the pass means no mid-run spill
        # cadence fires in the workers; close() (drain + worker exit)
        # is the durability point.  A fresh serial runner must restore
        # everything the workers measured.
        cells = grid_cells(
            ["flexsp", "deepspeed"], [workload], num_iterations=2
        )
        with SweepRunner(
            cells, solver_config=SOLVER, workers=2,
            store=tmp_path, spill_batch=100,
        ) as runner:
            fanned = runner.run()
        restored = SweepRunner(
            cells, solver_config=SOLVER, workers=1, store=tmp_path
        ).run()
        for a, b in zip(fanned.metrics, restored.metrics):
            assert a.deterministic() == b.deterministic()
        assert restored.metric("flexsp", workload.name).plan_cache_hit_rate == 1.0
        assert restored.store_stats.writes == 0

    def test_register_worker_exit_flush_is_idempotent_per_process(self):
        calls = []

        def flush():
            calls.append(1)

        key = (os.getpid(), flush)
        assert key not in pools._EXIT_FLUSHES
        pools.register_worker_exit_flush(flush)
        assert key in pools._EXIT_FLUSHES
        registered = len(pools._EXIT_FLUSHES)
        pools.register_worker_exit_flush(flush)
        assert len(pools._EXIT_FLUSHES) == registered
