"""Property-based tests: plan-cache correctness and CostTable exactness.

Two invariants guard the solver-throughput subsystem:

* A cache *hit* must be indistinguishable from a fresh solve — same
  plan, same predicted time — for any batch, since cached plans are
  reused across trials and iterations.
* The vectorized :class:`repro.cost.model.CostTable` must agree with
  the scalar :class:`repro.cost.model.CostModel` it replaces (exactly
  for accumulated-sum kernels, to 1e-9 relative for dot-product
  reductions).
"""

import hypothesis.strategies as st
import pytest
from hypothesis import given, settings

from repro.core.plan_cache import PlanCache, SolveStats, plan_key
from repro.core.solver import FlexSPSolver, SolverConfig
from repro.cost.model import cost_table

lengths_strategy = st.lists(
    st.integers(min_value=64, max_value=24_000), min_size=1, max_size=40
)


def greedy_solver(model, plan_cache: bool) -> FlexSPSolver:
    return FlexSPSolver(
        model, SolverConfig(num_trials=3, backend="greedy", plan_cache=plan_cache)
    )


class TestCachedPlansMatchFreshSolves:
    @given(lengths=lengths_strategy)
    @settings(max_examples=40, deadline=None)
    def test_warm_solve_equals_cold_solve(self, cost_model8, lengths):
        """Solving the same batch twice (second time fully cached) must
        reproduce the cold plan bit-for-bit.  Batches infeasible at
        every trial count (a near-capacity micro-batch in each split —
        the strategy can generate these) must stay infeasible on the
        cached retry: the INFEASIBLE sentinel is memoised too."""
        from repro.core.planner import PlanInfeasibleError

        solver = greedy_solver(cost_model8, plan_cache=True)
        try:
            cold = solver.solve(tuple(lengths))
        except PlanInfeasibleError:
            with pytest.raises(PlanInfeasibleError):
                solver.solve(tuple(lengths))
            return
        warm = solver.solve(tuple(lengths))
        assert warm.predicted_time == cold.predicted_time
        assert warm.microbatches == cold.microbatches
        assert warm.stats is not None and warm.stats.planner_calls == 0
        assert warm.stats.hit_rate == 1.0

    @given(lengths=lengths_strategy)
    @settings(max_examples=40, deadline=None)
    def test_cached_path_equals_uncached_path(self, cost_model8, lengths):
        """The cache must never change what the solver returns."""
        from repro.core.planner import PlanInfeasibleError

        try:
            cached = greedy_solver(cost_model8, plan_cache=True).solve(
                tuple(lengths)
            )
        except PlanInfeasibleError:
            with pytest.raises(PlanInfeasibleError):
                greedy_solver(cost_model8, plan_cache=False).solve(
                    tuple(lengths)
                )
            return
        uncached = greedy_solver(cost_model8, plan_cache=False).solve(tuple(lengths))
        assert cached.predicted_time == uncached.predicted_time
        assert cached.microbatches == uncached.microbatches

    @given(lengths=lengths_strategy, data=st.data())
    @settings(max_examples=40, deadline=None)
    def test_key_is_order_insensitive(self, cost_model8, lengths, data):
        from repro.core.planner import PlannerConfig

        shuffled = data.draw(st.permutations(lengths))
        cfg = PlannerConfig()
        assert plan_key(lengths, cost_model8, cfg, "milp") == plan_key(
            shuffled, cost_model8, cfg, "milp"
        )


class TestCostTableMatchesScalarModel:
    @given(lengths=lengths_strategy, data=st.data())
    @settings(max_examples=200, deadline=None)
    def test_time_with_overheads_agrees(self, cost_model8, lengths, data):
        table = cost_table(cost_model8)
        degree = data.draw(st.sampled_from(table.degrees))
        scalar = cost_model8.time_with_overheads(lengths, degree)
        vectorized = table.time_with_overheads(lengths, degree)
        assert vectorized == pytest.approx(scalar, rel=1e-9)

    @given(lengths=lengths_strategy, data=st.data())
    @settings(max_examples=200, deadline=None)
    def test_memory_agrees_exactly(self, cost_model8, lengths, data):
        table = cost_table(cost_model8)
        degree = data.draw(st.sampled_from(table.degrees))
        assert table.memory(sum(lengths), degree) == cost_model8.memory(
            lengths, degree
        )

    @given(lengths=lengths_strategy, data=st.data())
    @settings(max_examples=200, deadline=None)
    def test_incremental_group_time_is_bit_exact(self, cost_model8, lengths, data):
        """Sequential work/token accumulation (the greedy LPT path)
        reproduces the scalar model bit-for-bit, not just to 1e-9."""
        table = cost_table(cost_model8)
        degree = data.draw(st.sampled_from(table.degrees))
        work = 0.0
        tokens = 0
        for s in lengths:
            work += table.alpha1 * float(s) * float(s) + table.alpha2 * float(s)
            tokens += s
        assert table.group_time(work, tokens, degree) == (
            cost_model8.time_with_overheads(lengths, degree)
        )

    @given(uppers=st.lists(st.integers(min_value=1, max_value=65_536), min_size=1, max_size=16), data=st.data())
    @settings(max_examples=200, deadline=None)
    def test_milp_coefficients_are_bit_exact(self, cost_model8, uppers, data):
        """Eq. 18 coefficients from the table equal the scalar
        expression the MILP assembly used to compute per entry."""
        table = cost_table(cost_model8)
        degree = data.draw(st.sampled_from(table.degrees))
        coeffs = cost_model8.coeffs
        cpt = cost_model8.comm_seconds_per_token(degree)
        vec = table.milp_time_coefficients(uppers, degree)
        for s, w in zip(uppers, vec):
            scalar = (coeffs.alpha1 * s * s + coeffs.alpha2 * s) / degree
            scalar += cpt * s
            assert w == scalar


class TestPlanCacheMechanics:
    def test_lru_eviction(self):
        cache = PlanCache(capacity=2)
        cache.store(("a",), None, None)
        cache.store(("b",), None, None)
        assert cache.lookup(("a",)) is not None
        cache.store(("c",), None, None)  # evicts b (least recent)
        assert cache.lookup(("b",)) is None
        assert cache.lookup(("a",)) is not None
        assert cache.lookup(("c",)) is not None

    def test_counters(self):
        cache = PlanCache()
        assert cache.lookup(("x",)) is None
        cache.store(("x",), None, None)
        assert cache.lookup(("x",)) is not None
        assert cache.hits == 1
        assert cache.misses == 1

    def test_stats_merge_and_hit_rate(self):
        a = SolveStats(cache_hits=3, cache_misses=1)
        b = SolveStats(cache_hits=1, cache_misses=3)
        merged = a.merged(b)
        assert merged.cache_hits == 4
        assert merged.cache_misses == 4
        assert merged.hit_rate == pytest.approx(0.5)
        assert SolveStats().hit_rate == 0.0
