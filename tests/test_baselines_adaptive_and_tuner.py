"""Tests for repro.baselines.batch_adaptive and repro.baselines.tuner."""

import pytest

from repro.baselines.batch_adaptive import choose_degree_for_batch
from repro.baselines.homogeneous import estimate_homogeneous_iteration
from repro.baselines.tuner import choose_static_degree, tune_megatron
from repro.model.memory import ActivationCheckpointing


class TestBatchAdaptive:
    def test_short_batch_gets_small_degree(self, cost_model16):
        degree, __ = choose_degree_for_batch((2048,) * 16, cost_model16)
        assert degree <= 8

    def test_long_batch_forced_to_large_degree(self, cost_model16):
        long_seq = int(cost_model16.max_tokens_per_device() * 10)
        degree, __ = choose_degree_for_batch((long_seq,), cost_model16)
        assert degree == 16

    def test_choice_is_argmin_over_feasible(self, cost_model16):
        lengths = (8192, 4096, 2048) * 4
        degree, estimate = choose_degree_for_batch(lengths, cost_model16)
        longest = max(lengths)
        for d in (1, 2, 4, 8, 16):
            if cost_model16.fits([longest], d):
                assert estimate <= estimate_homogeneous_iteration(
                    lengths, cost_model16, d
                ) * (1 + 1e-9)

    def test_adapts_across_batches(self, cost_model16):
        """Different batches should be able to pick different degrees —
        the whole point of BatchAda."""
        short_degree, __ = choose_degree_for_batch((1024,) * 8, cost_model16)
        long_seq = int(cost_model16.max_tokens_per_device() * 10)
        long_degree, __ = choose_degree_for_batch((long_seq,), cost_model16)
        assert short_degree != long_degree

    def test_rejects_empty(self, cost_model16):
        with pytest.raises(ValueError, match="empty"):
            choose_degree_for_batch((), cost_model16)

    def test_rejects_impossible_batch(self, cost_model16):
        huge = int(cost_model16.max_tokens_per_device() * 100)
        with pytest.raises(ValueError, match="no homogeneous"):
            choose_degree_for_batch((huge,), cost_model16)


class TestStaticTuner:
    def test_worst_case_governs_feasibility(self, cost_model16):
        """Even if probe batches are short, the degree must host the
        context-limit worst case — the static-system handicap."""
        max_context = int(cost_model16.max_tokens_per_device() * 10)
        degree = choose_static_degree(
            [(1024,) * 8], cost_model16, max_context=max_context
        )
        assert cost_model16.fits([max_context], degree)

    def test_short_context_prefers_small_groups(self, cost_model16):
        degree = choose_static_degree(
            [(2048,) * 16], cost_model16, max_context=4096
        )
        assert degree <= 8

    def test_rejects_impossible_context(self, cost_model16):
        huge = int(cost_model16.max_tokens_per_device() * 100)
        with pytest.raises(ValueError, match="fits"):
            choose_static_degree([(1024,)], cost_model16, max_context=huge)

    def test_rejects_no_probes(self, cost_model16):
        with pytest.raises(ValueError, match="probe batch"):
            choose_static_degree([], cost_model16, max_context=1024)


class TestMegatronTuner:
    def test_returns_feasible_strategy(self, cluster64, gpt7b_64k):
        strategy = tune_megatron(
            [(8192, 4096) * 8],
            gpt7b_64k,
            cluster64,
            max_context=64 * 1024,
            checkpointing=ActivationCheckpointing.NONE,
        )
        assert strategy.tp * strategy.cp * strategy.dp == 64

    def test_long_context_forces_many_model_shards(self, cluster64):
        """At 384K the paper's tuned Megatron needs tp*cp >= 32."""
        from repro.model.config import GPT_7B

        cfg = GPT_7B.with_max_context(384 * 1024)
        strategy = tune_megatron(
            [(8192,) * 16],
            cfg,
            cluster64,
            max_context=384 * 1024,
            checkpointing=ActivationCheckpointing.NONE,
        )
        assert strategy.model_shards >= 32

    def test_rejects_no_probes(self, cluster64, gpt7b_64k):
        with pytest.raises(ValueError, match="probe batch"):
            tune_megatron([], gpt7b_64k, cluster64, max_context=1024)
