"""Tests for repro.model.flops: FLOP accounting."""

import pytest

from repro.model.config import GPT_7B, GPT_TINY
from repro.model.flops import (
    attention_flops,
    batch_flops,
    dense_flops_per_token,
    sequence_flops,
    training_flops_multiplier,
)
from repro.model.memory import ActivationCheckpointing


class TestDenseFlops:
    def test_matches_24_h_squared_per_layer(self):
        """Classic GPT block: 24 h^2 forward FLOPs per token per layer."""
        h = GPT_7B.hidden_size
        expected_blocks = GPT_7B.num_layers * 24 * h * h
        head = 2 * h * GPT_7B.vocab_size
        assert dense_flops_per_token(GPT_7B) == expected_blocks + head

    def test_scales_with_layers(self):
        deeper = GPT_TINY.with_max_context(GPT_TINY.max_context)
        assert dense_flops_per_token(GPT_7B) > dense_flops_per_token(deeper)


class TestAttentionFlops:
    def test_quadratic_in_sequence_length(self):
        base = attention_flops(GPT_7B, 1024)
        assert attention_flops(GPT_7B, 2048) == pytest.approx(4 * base)

    def test_causal_halves_full(self):
        causal = attention_flops(GPT_7B, 4096, causal=True)
        full = attention_flops(GPT_7B, 4096, causal=False)
        assert causal == pytest.approx(full / 2)

    def test_zero_length(self):
        assert attention_flops(GPT_7B, 0) == 0.0

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            attention_flops(GPT_7B, -1)


class TestSequenceAndBatchFlops:
    def test_sequence_is_dense_plus_attention(self):
        s = 8192
        expected = s * dense_flops_per_token(GPT_7B) + attention_flops(GPT_7B, s)
        assert sequence_flops(GPT_7B, s) == expected

    def test_batch_is_sum_of_sequences(self):
        lengths = [1024, 2048, 4096]
        assert batch_flops(GPT_7B, lengths) == pytest.approx(
            sum(sequence_flops(GPT_7B, s) for s in lengths)
        )

    def test_packing_beats_one_long_sequence(self):
        """Varlen attention: sum of quadratics < quadratic of the sum."""
        packed = batch_flops(GPT_7B, [8192] * 4)
        monolith = batch_flops(GPT_7B, [8192 * 4])
        assert packed < monolith

    def test_empty_batch_is_zero(self):
        assert batch_flops(GPT_7B, []) == 0.0


class TestTrainingMultiplier:
    def test_no_checkpointing_is_3x(self):
        assert training_flops_multiplier(ActivationCheckpointing.NONE) == 3.0

    def test_full_checkpointing_is_4x(self):
        assert training_flops_multiplier(ActivationCheckpointing.FULL) == 4.0

    def test_selective_between(self):
        selective = training_flops_multiplier(ActivationCheckpointing.SELECTIVE)
        assert 3.0 < selective < 4.0
