"""Tests for repro.experiments.runner and repro.experiments.reporting."""

import pytest

from repro.core.planner import PlannerConfig
from repro.core.solver import SolverConfig
from repro.data.distributions import COMMONCRAWL
from repro.experiments.reporting import (
    format_fraction,
    format_histogram,
    format_seconds,
    format_speedup,
    format_table,
    format_violin_summary,
)
from repro.experiments.runner import run_system, speedup
from repro.experiments.systems import DeepSpeedUlyssesSystem, FlexSPSystem
from repro.experiments.workloads import Workload
from repro.model.config import GPT_7B


@pytest.fixture(scope="module")
def small_workload(cluster16):
    return Workload(
        model=GPT_7B,
        distribution=COMMONCRAWL,
        max_context=32 * 1024,
        cluster=cluster16,
        global_batch_size=24,
    )


class TestRunner:
    def test_run_aggregates(self, small_workload):
        system = DeepSpeedUlyssesSystem(small_workload, sp_degree=16)
        result = run_system(system, small_workload, num_iterations=2)
        assert len(result.outcomes) == 2
        assert result.mean_iteration_seconds > 0
        assert result.total_tokens > 0

    def test_throughput_normalised_per_gpu(self, small_workload):
        system = DeepSpeedUlyssesSystem(small_workload, sp_degree=16)
        result = run_system(system, small_workload, num_iterations=1)
        per_gpu = result.tokens_per_second_per_gpu(16)
        assert per_gpu == pytest.approx(
            result.total_tokens
            / sum(o.iteration_seconds for o in result.outcomes)
            / 16
        )

    def test_speedup_helper(self, small_workload):
        system = DeepSpeedUlyssesSystem(small_workload, sp_degree=16)
        base = run_system(system, small_workload, num_iterations=1)
        assert speedup(base, base) == pytest.approx(1.0)

    def test_flexsp_beats_static_on_this_workload(self, small_workload):
        """The headline claim at miniature scale: FlexSP's iteration
        time must not exceed the tuned static baseline's."""
        solver_config = SolverConfig(
            num_trials=2, planner=PlannerConfig(time_limit=0.5, mip_rel_gap=0.05)
        )
        flexsp = run_system(
            FlexSPSystem(small_workload, solver_config), small_workload, 2
        )
        static = run_system(
            DeepSpeedUlyssesSystem(small_workload), small_workload, 2
        )
        assert flexsp.mean_iteration_seconds <= static.mean_iteration_seconds * 1.02

    def test_rejects_zero_iterations(self, small_workload):
        system = DeepSpeedUlyssesSystem(small_workload, sp_degree=16)
        with pytest.raises(ValueError, match="num_iterations"):
            run_system(system, small_workload, num_iterations=0)


class TestReporting:
    def test_table_alignment(self):
        text = format_table(["a", "bb"], [["1", "2"], ["333", "4"]])
        lines = text.splitlines()
        assert len({len(line) for line in lines}) == 1

    def test_table_title(self):
        text = format_table(["x"], [["1"]], title="Table 9")
        assert text.startswith("Table 9")

    def test_table_rejects_ragged_rows(self):
        with pytest.raises(ValueError, match="cells"):
            format_table(["a", "b"], [["1"]])

    def test_table_rejects_empty_headers(self):
        with pytest.raises(ValueError, match="column"):
            format_table([], [])

    def test_formatters(self):
        assert format_seconds(1.234) == "1.2"
        assert format_fraction(0.1234) == "12.3%"
        assert format_speedup(1.977) == "1.98x"

    def test_histogram_rendering(self):
        text = format_histogram({"<=1K": 0.5, "1K-2K": 0.25})
        assert "<=1K" in text
        assert "#" in text

    def test_histogram_rejects_empty(self):
        with pytest.raises(ValueError, match="non-empty"):
            format_histogram({})

    def test_violin_summary(self):
        text = format_violin_summary({8: [1000, 2000, 3000], 32: [50_000]})
        assert "SP=8" in text
        assert "SP=32" in text
        assert "median" in text


class TestSolveStatsAggregation:
    def test_flexsp_run_reports_cache_stats(self, small_workload):
        system = FlexSPSystem(
            small_workload,
            SolverConfig(
                num_trials=2, planner=PlannerConfig(time_limit=0.5, mip_rel_gap=0.05)
            ),
        )
        with system:
            first = run_system(system, small_workload, num_iterations=1)
            second = run_system(system, small_workload, num_iterations=1)
        assert first.solve_stats is not None
        assert first.solve_stats.planner_calls > 0
        # Same batch re-solved: everything comes from the plan cache.
        assert second.plan_cache_hit_rate == 1.0
        assert second.solve_stats.planner_calls == 0

    def test_baselines_report_no_stats(self, small_workload):
        system = DeepSpeedUlyssesSystem(small_workload, sp_degree=8)
        result = run_system(system, small_workload, num_iterations=1)
        assert result.solve_stats is None
        assert result.plan_cache_hit_rate == 0.0
