"""Tests for repro.parallelism.strategies: hybrid strategy descriptors."""

import pytest

from repro.parallelism.strategies import HybridStrategy, candidate_sp_degrees


class TestHybridStrategy:
    def test_world_size(self):
        s = HybridStrategy(dp=2, sp=4, tp=2)
        assert s.world_size == 16

    def test_rejects_nonpositive_degree(self):
        with pytest.raises(ValueError, match="dp degree"):
            HybridStrategy(dp=0)

    def test_rejects_bad_zero_stage(self):
        with pytest.raises(ValueError, match="zero_stage"):
            HybridStrategy(zero_stage=5)

    def test_rejects_sp_with_cp(self):
        with pytest.raises(ValueError, match="alternative"):
            HybridStrategy(sp=2, cp=2)

    def test_sequence_shards(self):
        assert HybridStrategy(sp=8).sequence_shards == 8
        assert HybridStrategy(cp=4).sequence_shards == 4

    def test_model_shards_excludes_dp(self):
        s = HybridStrategy(dp=4, tp=2, pp=2)
        assert s.model_shards == 4

    def test_validate_for_matching_cluster(self):
        HybridStrategy(dp=2, sp=8).validate_for(num_gpus=16, gpus_per_node=8)

    def test_validate_for_rejects_mismatch(self):
        with pytest.raises(ValueError, match="occupies"):
            HybridStrategy(dp=2, sp=8).validate_for(num_gpus=8, gpus_per_node=8)

    def test_describe_compact(self):
        assert HybridStrategy(dp=2, sp=32).describe() == "dp=2 sp=32 zero=3"

    def test_describe_trivial(self):
        assert HybridStrategy().describe() == "dp=1 zero=3"


class TestCandidateDegrees:
    def test_powers_of_two_up_to_cluster(self):
        assert candidate_sp_degrees(64) == [1, 2, 4, 8, 16, 32, 64]

    def test_non_power_cluster_capped(self):
        assert candidate_sp_degrees(48) == [1, 2, 4, 8, 16, 32]

    def test_max_degree_cap(self):
        assert candidate_sp_degrees(64, max_degree=8) == [1, 2, 4, 8]

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError, match="num_gpus"):
            candidate_sp_degrees(0)
