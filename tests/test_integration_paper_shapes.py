"""Integration tests: the paper's qualitative claims at reduced scale.

These run the full pipeline (profile -> solve -> execute) on a 16-GPU
simulated cluster with small batches, asserting the *shape* of the
paper's results: system ordering, communication behaviour, skewness
sensitivity, and the case-study layout structure.
"""

import pytest

from repro.core.planner import PlannerConfig
from repro.core.solver import SolverConfig
from repro.data.distributions import COMMONCRAWL, GITHUB, WIKIPEDIA
from repro.experiments.runner import run_system, speedup
from repro.experiments.systems import (
    DeepSpeedUlyssesSystem,
    FlexSPBatchAdaSystem,
    FlexSPSystem,
)
from repro.experiments.workloads import Workload
from repro.model.config import GPT_7B

FAST_SOLVER = SolverConfig(
    num_trials=2, planner=PlannerConfig(time_limit=0.5, mip_rel_gap=0.05)
)


def small_workload(cluster, distribution=COMMONCRAWL, max_context=32 * 1024,
                   batch=48):
    return Workload(
        model=GPT_7B,
        distribution=distribution,
        max_context=max_context,
        cluster=cluster,
        global_batch_size=batch,
    )


@pytest.fixture(scope="module")
def workload(cluster16):
    return small_workload(cluster16)


@pytest.fixture(scope="module")
def flexsp_result(workload):
    return run_system(FlexSPSystem(workload, FAST_SOLVER), workload, 3)


@pytest.fixture(scope="module")
def deepspeed_result(workload):
    return run_system(DeepSpeedUlyssesSystem(workload), workload, 3)


@pytest.fixture(scope="module")
def batchada_result(workload):
    return run_system(FlexSPBatchAdaSystem(workload), workload, 3)


class TestSystemOrdering:
    """Fig. 4's ordering: FlexSP <= BatchAda <= DeepSpeed."""

    def test_flexsp_not_slower_than_deepspeed(
        self, flexsp_result, deepspeed_result
    ):
        assert (
            flexsp_result.mean_iteration_seconds
            <= deepspeed_result.mean_iteration_seconds * 1.02
        )

    def test_flexsp_not_slower_than_batchada(self, flexsp_result, batchada_result):
        assert (
            flexsp_result.mean_iteration_seconds
            <= batchada_result.mean_iteration_seconds * 1.02
        )

    def test_batchada_not_slower_than_deepspeed(
        self, batchada_result, deepspeed_result
    ):
        assert (
            batchada_result.mean_iteration_seconds
            <= deepspeed_result.mean_iteration_seconds * 1.02
        )

    def test_flexsp_speedup_is_real(self, flexsp_result, deepspeed_result):
        """On a long-tail corpus with a 32K worst case forcing the
        static system to SP=16 (cross-node), FlexSP must win outright."""
        assert speedup(deepspeed_result, flexsp_result) > 1.05


class TestCommunicationBehaviour:
    """Fig. 5a: the gains come from All-to-All reduction."""

    def test_flexsp_cuts_alltoall_share(self, flexsp_result, deepspeed_result):
        assert (
            flexsp_result.mean_alltoall_fraction
            < deepspeed_result.mean_alltoall_fraction
        )

    def test_alltoall_shares_in_plausible_range(
        self, flexsp_result, deepspeed_result
    ):
        assert 0 <= flexsp_result.mean_alltoall_fraction < 0.5
        assert 0 < deepspeed_result.mean_alltoall_fraction < 0.7


class TestAssignmentShape:
    """Fig. 5b: shorter sequences prefer lower SP degrees."""

    def test_short_sequences_get_small_degrees(self, workload):
        system = FlexSPSystem(workload, FAST_SOLVER)
        outcome = system.run_iteration(workload.corpus().batch(0).lengths)
        by_degree = outcome.plan.assignment_by_degree()
        if len(by_degree) >= 2:
            degrees = sorted(by_degree)
            import statistics

            small_median = statistics.median(by_degree[degrees[0]])
            large_median = statistics.median(by_degree[degrees[-1]])
            assert small_median <= large_median


class TestSolverOverhead:
    """S4.3: solving must stay within seconds at this scale."""

    def test_solve_time_bounded(self, flexsp_result):
        assert flexsp_result.mean_solve_seconds < 20.0


class TestSkewSensitivity:
    """S6.2: stronger skew (Wikipedia) gives FlexSP a larger edge than
    weaker skew, all else equal."""

    @pytest.mark.parametrize("distribution", [WIKIPEDIA, GITHUB])
    def test_flexsp_wins_on_every_corpus(self, cluster16, distribution):
        w = small_workload(cluster16, distribution=distribution, batch=32)
        flexsp = run_system(FlexSPSystem(w, FAST_SOLVER), w, 2)
        static = run_system(DeepSpeedUlyssesSystem(w), w, 2)
        assert flexsp.mean_iteration_seconds <= static.mean_iteration_seconds * 1.02
