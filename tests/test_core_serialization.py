"""Tests for repro.core.serialization: plan wire format and store."""

import pytest

from repro.core.serialization import (
    PlanStore,
    dumps,
    loads,
    plan_from_dict,
    plan_to_dict,
)
from repro.core.types import GroupAssignment, IterationPlan, MicroBatchPlan


@pytest.fixture()
def plan():
    mb1 = MicroBatchPlan(
        groups=(
            GroupAssignment(degree=4, device_ranks=(0, 1, 2, 3),
                            lengths=(8192, 1024)),
            GroupAssignment(degree=2, device_ranks=(4, 5), lengths=(512,)),
        )
    )
    mb2 = MicroBatchPlan(
        groups=(
            GroupAssignment(degree=8, device_ranks=tuple(range(8)),
                            lengths=(30_000,)),
        )
    )
    return IterationPlan(
        microbatches=(mb1, mb2), predicted_time=3.5, solver_name="flexsp-milp"
    )


class TestRoundTrip:
    def test_dict_round_trip(self, plan):
        assert plan_from_dict(plan_to_dict(plan)) == plan

    def test_json_round_trip(self, plan):
        assert loads(dumps(plan)) == plan

    def test_preserves_metadata(self, plan):
        restored = loads(dumps(plan))
        assert restored.predicted_time == 3.5
        assert restored.solver_name == "flexsp-milp"

    def test_rejects_unknown_version(self, plan):
        payload = plan_to_dict(plan)
        payload["version"] = 99
        with pytest.raises(ValueError, match="version"):
            plan_from_dict(payload)

    def test_invalid_payload_hits_plan_invariants(self, plan):
        payload = plan_to_dict(plan)
        payload["microbatches"][0]["groups"][0]["degree"] = 3
        with pytest.raises(ValueError, match="power of two"):
            plan_from_dict(payload)


class TestPlanStore:
    def test_put_get(self, plan, tmp_path):
        store = PlanStore(tmp_path / "plans")
        store.put(0, plan)
        assert store.get(0) == plan

    def test_missing_step_raises(self, tmp_path):
        store = PlanStore(tmp_path)
        with pytest.raises(KeyError, match="step 7"):
            store.get(7)

    def test_contains(self, plan, tmp_path):
        store = PlanStore(tmp_path)
        assert 0 not in store
        store.put(0, plan)
        assert 0 in store

    def test_pending_after(self, plan, tmp_path):
        store = PlanStore(tmp_path)
        for step in (0, 1, 2, 4):
            store.put(step, plan)
        assert store.pending_after(0) == 2  # 1 and 2; 3 missing
        assert store.pending_after(4) == 0

    def test_steps_sorted(self, plan, tmp_path):
        store = PlanStore(tmp_path)
        for step in (5, 1, 3):
            store.put(step, plan)
        assert store.steps() == [1, 3, 5]

    def test_rejects_negative_step(self, plan, tmp_path):
        store = PlanStore(tmp_path)
        with pytest.raises(ValueError, match="step"):
            store.put(-1, plan)

    def test_overwrite_is_atomic_update(self, plan, tmp_path):
        store = PlanStore(tmp_path)
        store.put(0, plan)
        single = IterationPlan(microbatches=plan.microbatches[:1])
        store.put(0, single)
        assert store.get(0) == single


class TestSolveStatsSerialization:
    def test_stats_round_trip(self):
        from repro.core.types import SolveStats

        plan = IterationPlan(
            microbatches=(
                MicroBatchPlan(
                    groups=(
                        GroupAssignment(
                            degree=2, device_ranks=(0, 1), lengths=(512, 128)
                        ),
                    )
                ),
            ),
            predicted_time=1.25,
            stats=SolveStats(cache_hits=3, cache_misses=1,
                             trials=2, microbatches=4, solve_seconds=0.5),
        )
        restored = loads(dumps(plan))
        assert restored.stats == plan.stats

    def test_plans_without_stats_stay_stats_free(self):
        plan = IterationPlan(
            microbatches=(
                MicroBatchPlan(
                    groups=(
                        GroupAssignment(
                            degree=1, device_ranks=(0,), lengths=(64,)
                        ),
                    )
                ),
            ),
        )
        payload = plan_to_dict(plan)
        assert "stats" not in payload
        assert loads(dumps(plan)).stats is None
