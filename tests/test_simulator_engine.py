"""Tests for repro.simulator.engine: the discrete-event loop."""

import pytest

from repro.simulator.engine import DiscreteEventEngine


class TestScheduling:
    def test_events_fire_in_time_order(self):
        engine = DiscreteEventEngine()
        fired = []
        engine.schedule(2.0, lambda e: fired.append("late"))
        engine.schedule(1.0, lambda e: fired.append("early"))
        engine.run()
        assert fired == ["early", "late"]

    def test_ties_fire_in_scheduling_order(self):
        engine = DiscreteEventEngine()
        fired = []
        engine.schedule(1.0, lambda e: fired.append("first"))
        engine.schedule(1.0, lambda e: fired.append("second"))
        engine.run()
        assert fired == ["first", "second"]

    def test_clock_advances(self):
        engine = DiscreteEventEngine()
        times = []
        engine.schedule(0.5, lambda e: times.append(e.now))
        engine.schedule(1.5, lambda e: times.append(e.now))
        final = engine.run()
        assert times == [0.5, 1.5]
        assert final == 1.5

    def test_actions_can_schedule_more_events(self):
        engine = DiscreteEventEngine()
        fired = []

        def chain(e):
            fired.append(e.now)
            if len(fired) < 3:
                e.schedule_after(1.0, chain)

        engine.schedule(0.0, chain)
        engine.run()
        assert fired == [0.0, 1.0, 2.0]

    def test_rejects_scheduling_in_the_past(self):
        engine = DiscreteEventEngine()
        engine.schedule(5.0, lambda e: e.schedule(1.0, lambda e2: None))
        with pytest.raises(ValueError, match="clock"):
            engine.run()

    def test_rejects_negative_delay(self):
        engine = DiscreteEventEngine()
        with pytest.raises(ValueError, match="delay"):
            engine.schedule_after(-1.0, lambda e: None)


class TestRunControl:
    def test_run_until_leaves_future_events(self):
        engine = DiscreteEventEngine()
        fired = []
        engine.schedule(1.0, lambda e: fired.append(1))
        engine.schedule(10.0, lambda e: fired.append(10))
        engine.run(until=5.0)
        assert fired == [1]
        assert engine.pending() == 1

    def test_resume_after_until(self):
        engine = DiscreteEventEngine()
        fired = []
        engine.schedule(1.0, lambda e: fired.append(1))
        engine.schedule(10.0, lambda e: fired.append(10))
        engine.run(until=5.0)
        engine.run()
        assert fired == [1, 10]

    def test_events_processed_counter(self):
        engine = DiscreteEventEngine()
        for t in (1.0, 2.0, 3.0):
            engine.schedule(t, lambda e: None)
        engine.run()
        assert engine.events_processed == 3

    def test_empty_run_returns_zero(self):
        assert DiscreteEventEngine().run() == 0.0
