"""Tests for repro.core.planner: the MILP parallelism planner."""

import pytest

from repro.core.planner import (
    PlanInfeasibleError,
    PlannerConfig,
    enumerate_virtual_groups,
    plan_makespan,
    plan_microbatch,
)

FAST = PlannerConfig(time_limit=1.0, mip_rel_gap=0.05)


class TestPlannerConfig:
    def test_defaults_match_paper(self):
        cfg = PlannerConfig()
        assert cfg.num_buckets == 16
        assert cfg.bucketing == "optimal"
        assert cfg.min_degree == 1

    def test_rejects_unknown_bucketing(self):
        with pytest.raises(ValueError, match="bucketing"):
            PlannerConfig(bucketing="magic")

    def test_rejects_bad_time_limit(self):
        with pytest.raises(ValueError, match="time_limit"):
            PlannerConfig(time_limit=0)

    def test_rejects_bad_gap(self):
        with pytest.raises(ValueError, match="mip_rel_gap"):
            PlannerConfig(mip_rel_gap=1.0)

    def test_rejects_non_power_min_degree(self):
        with pytest.raises(ValueError, match="min_degree"):
            PlannerConfig(min_degree=3)


class TestVirtualGroups:
    def test_counts_per_degree(self, cost_model8):
        groups = enumerate_virtual_groups(cost_model8, (1024,), PlannerConfig())
        by_degree = {}
        for g in groups:
            by_degree[g.degree] = by_degree.get(g.degree, 0) + 1
        assert by_degree == {1: 8, 2: 4, 4: 2, 8: 1}

    def test_max_groups_cap(self, cost_model8):
        cfg = PlannerConfig(max_groups_per_degree=2)
        groups = enumerate_virtual_groups(cost_model8, (1024,), cfg)
        by_degree = {}
        for g in groups:
            by_degree[g.degree] = by_degree.get(g.degree, 0) + 1
        assert by_degree == {1: 2, 2: 2, 4: 2, 8: 1}

    def test_min_degree_floor(self, cost_model8):
        cfg = PlannerConfig(min_degree=4)
        groups = enumerate_virtual_groups(cost_model8, (1024,), cfg)
        assert min(g.degree for g in groups) == 4


class TestPlanValidity:
    def test_all_sequences_assigned(self, cost_model8):
        lengths = (4096, 8192, 2048, 1024, 16384, 512, 512, 3000)
        plan, __ = plan_microbatch(lengths, cost_model8, FAST)
        assigned = sorted(s for g in plan.groups for s in g.lengths)
        assert assigned == sorted(lengths)

    def test_devices_within_budget(self, cost_model8):
        lengths = (2048,) * 12
        plan, __ = plan_microbatch(lengths, cost_model8, FAST)
        assert plan.devices_used <= 8

    def test_memory_constraint_respected(self, cost_model8):
        lengths = (20_000, 10_000, 2048, 2048, 1024)
        plan, __ = plan_microbatch(lengths, cost_model8, FAST)
        for g in plan.groups:
            assert cost_model8.fits(g.lengths, g.degree), (
                f"SP={g.degree} group with {g.tokens} tokens overflows memory"
            )

    def test_predicted_time_positive_and_consistent(self, cost_model8):
        lengths = (4096, 8192, 1024)
        plan, predicted = plan_microbatch(lengths, cost_model8, FAST)
        assert predicted > 0
        assert predicted == pytest.approx(plan_makespan(cost_model8, plan))

    def test_rejects_empty_microbatch(self, cost_model8):
        with pytest.raises(ValueError, match="empty"):
            plan_microbatch((), cost_model8, FAST)


class TestPlannerBehaviour:
    def test_long_sequence_gets_large_group(self, cost_model8):
        """A sequence near the single-device limit must be scattered."""
        long_seq = int(cost_model8.max_tokens_per_device() * 4)
        plan, __ = plan_microbatch((long_seq, 1024, 1024), cost_model8, FAST)
        host = next(g for g in plan.groups if long_seq in g.lengths)
        assert host.degree >= 4

    def test_short_batch_prefers_small_groups(self, cost_model16):
        """All-short micro-batch: no group should span nodes (SP>8) —
        small groups dodge the inter-node cliff (Observation 1)."""
        lengths = (2048,) * 32
        plan, __ = plan_microbatch(lengths, cost_model16, FAST)
        assert max(g.degree for g in plan.groups) <= 8

    def test_heterogeneous_groups_for_mixed_lengths(self, cost_model64):
        """The Fig. 1 scenario on the paper's cluster: one ~100K
        sequence needs SP=32 (crossing nodes), while the short
        sequences must get smaller intra-node groups — a genuinely
        heterogeneous layout."""
        long_seq = 100 * 1024
        lengths = (long_seq,) + (48 * 1024,) * 4
        plan, predicted = plan_microbatch(lengths, cost_model64, FAST)
        host = next(g for g in plan.groups if long_seq in g.lengths)
        assert host.degree >= 32
        small = [g.degree for g in plan.groups if long_seq not in g.lengths]
        assert small and max(small) <= 8, (
            f"short sequences should use intra-node groups, got {plan.layout()}"
        )
        # And the heterogeneous layout must beat both homogeneous options
        # the paper's Fig. 1 compares against.
        assert predicted < cost_model64.time_with_overheads(lengths, 64)

    def test_beats_or_matches_single_static_group(self, cost_model16):
        """The planner must never be worse than the homogeneous SP=16
        layout it could always fall back to."""
        lengths = (16384,) * 2 + (2048,) * 16
        plan, predicted = plan_microbatch(lengths, cost_model16, FAST)
        static = cost_model16.time_with_overheads(lengths, 16)
        assert predicted <= static * 1.001

    def test_infeasible_when_sequence_too_long(self, cost_model8):
        huge = int(cost_model8.max_tokens_per_device() * 100)
        with pytest.raises(PlanInfeasibleError):
            plan_microbatch((huge,), cost_model8, FAST)

    def test_infeasible_when_tokens_exceed_cluster(self, cost_model8):
        per_device = int(cost_model8.max_tokens_per_device())
        lengths = (per_device,) * 12  # 150% of cluster capacity
        with pytest.raises(PlanInfeasibleError):
            plan_microbatch(lengths, cost_model8, FAST)


class TestGreedyIncumbentMode:
    def test_disabled_still_produces_valid_plan(self, cost_model8):
        cfg = PlannerConfig(time_limit=2.0, greedy_incumbent=False)
        lengths = (4096, 8192, 2048, 1024)
        plan, predicted = plan_microbatch(lengths, cost_model8, cfg)
        assigned = sorted(s for g in plan.groups for s in g.lengths)
        assert assigned == sorted(lengths)
        assert predicted > 0

    def test_incumbent_never_hurts(self, cost_model8):
        lengths = (4096, 8192, 2048, 1024, 20_000)
        cfg_on = PlannerConfig(time_limit=1.0, greedy_incumbent=True)
        cfg_off = PlannerConfig(time_limit=1.0, greedy_incumbent=False)
        __, with_incumbent = plan_microbatch(lengths, cost_model8, cfg_on)
        __, without = plan_microbatch(lengths, cost_model8, cfg_off)
        assert with_incumbent <= without * 1.001


class TestQuietStdout:
    """Regression tests for the fd-level HiGHS silencer."""

    def test_silences_fd1_and_fd2(self, capfd):
        import os

        from repro.core.planner import _quiet_stdout

        with _quiet_stdout():
            os.write(1, b"loud stdout\n")
            os.write(2, b"loud stderr\n")
        out, err = capfd.readouterr()
        assert "loud" not in out
        assert "loud" not in err

    def test_reentrant_keeps_outer_silence(self, capfd):
        """A nested entry must not restore the descriptors early."""
        import os

        from repro.core.planner import _quiet_stdout

        with _quiet_stdout():
            with _quiet_stdout():
                os.write(1, b"inner\n")
            os.write(1, b"after inner stdout\n")
            os.write(2, b"after inner stderr\n")
        out, err = capfd.readouterr()
        assert out == ""
        assert err == ""
        os.write(1, b"restored\n")
        out, __ = capfd.readouterr()
        assert "restored" in out
