"""Tests for repro.experiments.workloads: the evaluation grid."""

import pytest

from repro.data.distributions import COMMONCRAWL
from repro.experiments.workloads import (
    Workload,
    case_study_workload,
    fig4_workloads,
    fig6_context_scaling_workloads,
    fig6_gpu_scaling_workloads,
)
from repro.model.config import GPT_7B, GPT_13B, GPT_30B
from repro.model.memory import ActivationCheckpointing


class TestWorkload:
    def test_name_encodes_configuration(self):
        w = Workload(model=GPT_7B, distribution=COMMONCRAWL, max_context=192 * 1024)
        assert w.name == "gpt-7b/commoncrawl/192K/64gpu"

    def test_model_at_context_resizes_positional(self):
        w = Workload(model=GPT_7B, distribution=COMMONCRAWL, max_context=64 * 1024)
        assert w.model_at_context.max_context == 64 * 1024

    def test_checkpointing_policy_follows_paper(self):
        for model, expected in (
            (GPT_7B, ActivationCheckpointing.NONE),
            (GPT_13B, ActivationCheckpointing.SELECTIVE),
            (GPT_30B, ActivationCheckpointing.FULL),
        ):
            w = Workload(model=model, distribution=COMMONCRAWL,
                         max_context=384 * 1024)
            assert w.checkpointing is expected

    def test_corpus_respects_limit(self):
        w = Workload(model=GPT_7B, distribution=COMMONCRAWL,
                     max_context=32 * 1024, global_batch_size=64)
        assert w.corpus().batch(0).max_length <= 32 * 1024

    def test_rejects_bad_context(self):
        with pytest.raises(ValueError, match="max_context"):
            Workload(model=GPT_7B, distribution=COMMONCRAWL, max_context=0)


class TestGrids:
    def test_fig4_grid_is_eighteen(self):
        workloads = fig4_workloads()
        assert len(workloads) == 18
        assert len({w.name for w in workloads}) == 18

    def test_fig4_covers_both_contexts(self):
        contexts = {w.max_context for w in fig4_workloads()}
        assert contexts == {192 * 1024, 384 * 1024}

    def test_fig6_gpu_scaling_sizes(self):
        sizes = [w.cluster.num_gpus for w in fig6_gpu_scaling_workloads()]
        assert sizes == [16, 32, 64]

    def test_fig6_context_scaling_contexts(self):
        contexts = [w.max_context // 1024 for w in fig6_context_scaling_workloads()]
        assert contexts == [64, 128, 192, 256, 384]

    def test_case_study_matches_section_6_3(self):
        w = case_study_workload()
        assert w.model is GPT_7B
        assert w.distribution.name == "commoncrawl"
        assert w.max_context == 384 * 1024
