"""Tests for repro.simulator.executor: running plans on the cluster."""

import pytest

from repro.core.types import GroupAssignment, IterationPlan, MicroBatchPlan
from repro.model.config import GPT_7B
from repro.simulator.executor import IterationExecutor
from repro.simulator.trace import PhaseKind


@pytest.fixture()
def executor(cluster16, gpt7b_64k):
    return IterationExecutor(config=gpt7b_64k, cluster=cluster16)


def group(degree, start, lengths):
    return GroupAssignment(
        degree=degree,
        device_ranks=tuple(range(start, start + degree)),
        lengths=tuple(lengths),
    )


def single_group_plan(degree, lengths, microbatches=1):
    mb = MicroBatchPlan(groups=(group(degree, 0, lengths),))
    return IterationPlan(microbatches=(mb,) * microbatches)


class TestExecution:
    def test_iteration_time_positive(self, executor):
        result = executor.run(single_group_plan(8, [4096, 2048]))
        assert result.iteration_seconds > 0

    def test_microbatch_times_recorded(self, executor):
        result = executor.run(single_group_plan(8, [4096], microbatches=3))
        assert len(result.microbatch_seconds) == 3

    def test_more_microbatches_take_longer(self, executor):
        one = executor.run(single_group_plan(8, [4096], microbatches=1))
        three = executor.run(single_group_plan(8, [4096], microbatches=3))
        assert three.iteration_seconds > one.iteration_seconds

    def test_iteration_includes_step_phases(self, executor):
        result = executor.run(single_group_plan(8, [4096]))
        assert result.trace.wall_seconds(PhaseKind.GRAD_SYNC) > 0
        assert result.trace.wall_seconds(PhaseKind.OPTIMIZER) > 0

    def test_concurrent_groups_overlap(self, cluster16, gpt7b_64k):
        """Two concurrent SP=8 groups must not double the wall time of
        one group with the same per-group workload."""
        executor = IterationExecutor(config=gpt7b_64k, cluster=cluster16)
        lone = executor.run(
            IterationPlan(
                microbatches=(MicroBatchPlan(groups=(group(8, 0, [8192]),)),)
            )
        )
        pair = executor.run(
            IterationPlan(
                microbatches=(
                    MicroBatchPlan(
                        groups=(group(8, 0, [8192]), group(8, 8, [8192]))
                    ),
                )
            )
        )
        assert pair.iteration_seconds == pytest.approx(
            lone.iteration_seconds, rel=0.01
        )

    def test_makespan_is_slowest_group(self, cluster16, gpt7b_64k):
        executor = IterationExecutor(config=gpt7b_64k, cluster=cluster16)
        plan = IterationPlan(
            microbatches=(
                MicroBatchPlan(
                    groups=(group(8, 0, [32768]), group(8, 8, [1024]))
                ),
            )
        )
        result = executor.run(plan)
        slow_only = executor.run(
            IterationPlan(
                microbatches=(MicroBatchPlan(groups=(group(8, 0, [32768]),)),)
            )
        )
        assert result.microbatch_seconds[0] == pytest.approx(
            slow_only.microbatch_seconds[0], rel=0.01
        )


class TestTraceAccounting:
    def test_idle_recorded_for_stragglers(self, cluster16, gpt7b_64k):
        executor = IterationExecutor(config=gpt7b_64k, cluster=cluster16)
        plan = IterationPlan(
            microbatches=(
                MicroBatchPlan(
                    groups=(group(8, 0, [32768]), group(8, 8, [1024]))
                ),
            )
        )
        result = executor.run(plan)
        assert result.trace.wall_seconds(PhaseKind.IDLE) > 0

    def test_unused_devices_idle(self, cluster16, gpt7b_64k):
        executor = IterationExecutor(config=gpt7b_64k, cluster=cluster16)
        result = executor.run(single_group_plan(8, [4096]))  # 8 of 16 used
        assert result.trace.wall_seconds(PhaseKind.IDLE) > 0

    def test_phases_tile_device_time(self, cluster16, gpt7b_64k):
        """Per-micro-batch phases (weighted) + idle must equal the
        micro-batch wall time exactly."""
        executor = IterationExecutor(config=gpt7b_64k, cluster=cluster16)
        plan = IterationPlan(
            microbatches=(
                MicroBatchPlan(
                    groups=(group(8, 0, [16384, 2048]), group(4, 8, [1024]))
                ),
            )
        )
        result = executor.run(plan)
        mb_phases = result.trace.phases_of_microbatch(0)
        device_seconds = sum(p.device_seconds for p in mb_phases)
        expected = result.microbatch_seconds[0] * cluster16.num_gpus
        assert device_seconds == pytest.approx(expected, rel=1e-6)

    def test_alltoall_fraction_between_zero_and_one(self, executor):
        result = executor.run(single_group_plan(16, [32768, 16384]))
        assert 0 < result.alltoall_fraction < 1


class TestGroupCreation:
    def test_first_iteration_creates_groups(self, cluster16, gpt7b_64k):
        executor = IterationExecutor(config=gpt7b_64k, cluster=cluster16)
        result = executor.run(single_group_plan(8, [4096]))
        assert result.group_creation_seconds > 0

    def test_hot_switch_second_iteration_free(self, cluster16, gpt7b_64k):
        executor = IterationExecutor(config=gpt7b_64k, cluster=cluster16)
        plan = single_group_plan(8, [4096])
        executor.run(plan)
        second = executor.run(plan)
        assert second.group_creation_seconds == 0.0

    def test_creation_excluded_from_iteration_time(self, cluster16, gpt7b_64k):
        cold = IterationExecutor(config=gpt7b_64k, cluster=cluster16)
        warm = IterationExecutor(config=gpt7b_64k, cluster=cluster16)
        plan = single_group_plan(8, [4096])
        warm.run(plan)
        assert cold.run(plan).iteration_seconds == pytest.approx(
            warm.run(plan).iteration_seconds
        )

    def test_throughput_helper(self, executor):
        result = executor.run(single_group_plan(8, [4096]))
        assert result.tokens_per_second(4096) == pytest.approx(
            4096 / result.iteration_seconds
        )
