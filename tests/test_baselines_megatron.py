"""Tests for repro.baselines.megatron: the TP/CP/DP baseline."""

import pytest

from repro.baselines.megatron import (
    MegatronStrategy,
    megatron_iteration,
    megatron_state_bytes_per_device,
    megatron_strategy_space,
    megatron_token_capacity,
)
from repro.model.config import GPT_7B
from repro.model.memory import ActivationCheckpointing


class TestStrategy:
    def test_rejects_non_power_of_two(self):
        with pytest.raises(ValueError, match="power of two"):
            MegatronStrategy(tp=3, cp=1, dp=1)

    def test_model_shards(self):
        assert MegatronStrategy(tp=8, cp=4, dp=2).model_shards == 32

    def test_describe(self):
        assert MegatronStrategy(tp=8, cp=4, dp=2).describe() == "tp=8 cp=4 dp=2 zero=1"


class TestStrategySpace:
    def test_all_factorisations_cover_cluster(self, cluster64):
        for s in megatron_strategy_space(cluster64):
            assert s.tp * s.cp * s.dp == 64

    def test_tp_capped_at_two_nodes(self, cluster64):
        assert max(s.tp for s in megatron_strategy_space(cluster64)) <= 16

    def test_paper_strategies_present(self, cluster64):
        """The paper's tuned candidates (tp=8 cp=8, tp=16 cp=4, ...)."""
        space = {(s.tp, s.cp) for s in megatron_strategy_space(cluster64)}
        assert (8, 8) in space
        assert (16, 4) in space
        assert (8, 4) in space


class TestMemory:
    def test_tp_shards_parameters(self, gpt7b_64k):
        t1 = megatron_state_bytes_per_device(gpt7b_64k, MegatronStrategy(tp=1, cp=1, dp=16))
        t8 = megatron_state_bytes_per_device(gpt7b_64k, MegatronStrategy(tp=8, cp=1, dp=2))
        assert t8 < t1 / 3

    def test_capacity_grows_with_shards(self, cluster64, gpt7b_64k):
        small = megatron_token_capacity(
            gpt7b_64k, cluster64, MegatronStrategy(tp=8, cp=1, dp=8),
            ActivationCheckpointing.NONE,
        )
        large = megatron_token_capacity(
            gpt7b_64k, cluster64, MegatronStrategy(tp=8, cp=8, dp=1),
            ActivationCheckpointing.NONE,
        )
        assert large > 4 * small


class TestIteration:
    def test_iteration_positive(self, cluster64, gpt7b_64k):
        strategy = MegatronStrategy(tp=8, cp=2, dp=4)
        outcome = megatron_iteration(
            (8192, 4096, 2048) * 4, gpt7b_64k, cluster64, strategy
        )
        assert outcome.iteration_seconds > 0
        assert 0 <= outcome.comm_fraction < 1

    def test_rejects_over_capacity(self, cluster64, gpt7b_64k):
        strategy = MegatronStrategy(tp=1, cp=1, dp=64)
        capacity = megatron_token_capacity(
            gpt7b_64k, cluster64, strategy, ActivationCheckpointing.NONE
        )
        with pytest.raises(ValueError, match="exceeds replica capacity"):
            megatron_iteration(
                (capacity + 1,), gpt7b_64k, cluster64, strategy
            )

    def test_more_dp_fewer_rounds(self, cluster64, gpt7b_64k):
        lengths = (8192,) * 64
        few_replicas = megatron_iteration(
            lengths, gpt7b_64k, cluster64, MegatronStrategy(tp=8, cp=4, dp=2)
        )
        many_replicas = megatron_iteration(
            lengths, gpt7b_64k, cluster64, MegatronStrategy(tp=8, cp=1, dp=8)
        )
        assert many_replicas.num_microbatches <= few_replicas.num_microbatches

    def test_cp_comm_burden_on_short_sequences(self, cluster64, gpt7b_64k):
        """Appendix D: on short sequences, attention compute cannot hide
        the ring, so high-CP strategies carry a visible comm share."""
        lengths = (2048,) * 64
        outcome = megatron_iteration(
            lengths, gpt7b_64k, cluster64, MegatronStrategy(tp=8, cp=8, dp=1)
        )
        assert outcome.comm_fraction > 0.2
