"""Tests for repro.experiments.sweep: the parallel sweep runner."""

from __future__ import annotations

import pytest

from repro.core.solver import SolverConfig
from repro.cluster.topology import standard_cluster
from repro.data.distributions import COMMONCRAWL, GITHUB
from repro.experiments.runner import run_system
from repro.experiments.sweep import (
    CellMetrics,
    SweepCell,
    SweepRunner,
    WorkloadContext,
    _ShardScheduler,
    grid_cells,
    workload_signature,
)
from repro.experiments.systems import DeepSpeedUlyssesSystem, build_system
from repro.experiments.workloads import Workload
from repro.model.config import GPT_7B

SOLVER = SolverConfig(backend="greedy", num_trials=2)


@pytest.fixture(scope="module")
def workload():
    return Workload(
        model=GPT_7B,
        distribution=GITHUB,
        max_context=32 * 1024,
        cluster=standard_cluster(8),
        global_batch_size=16,
    )


@pytest.fixture(scope="module")
def other_workload():
    return Workload(
        model=GPT_7B,
        distribution=COMMONCRAWL,
        max_context=32 * 1024,
        cluster=standard_cluster(8),
        global_batch_size=16,
    )


class TestSweepCell:
    def test_rejects_unknown_system(self, workload):
        with pytest.raises(ValueError, match="unknown system"):
            SweepCell(system="pytorch", workload=workload)

    def test_rejects_nonpositive_iterations(self, workload):
        with pytest.raises(ValueError, match="num_iterations"):
            SweepCell(system="flexsp", workload=workload, num_iterations=0)

    def test_grid_cells_cross_product(self, workload, other_workload):
        cells = grid_cells(["flexsp", "megatron"], [workload, other_workload])
        assert len(cells) == 4
        assert {(c.system, c.workload.name) for c in cells} == {
            ("flexsp", workload.name),
            ("megatron", workload.name),
            ("flexsp", other_workload.name),
            ("megatron", other_workload.name),
        }


class TestWorkloadSignature:
    def test_equal_workloads_share_signature(self, workload):
        clone = Workload(
            model=GPT_7B,
            distribution=GITHUB,
            max_context=32 * 1024,
            cluster=standard_cluster(8),
            global_batch_size=16,
        )
        assert workload_signature(clone) == workload_signature(workload)

    def test_batch_size_changes_signature(self, workload):
        resized = Workload(
            model=workload.model,
            distribution=workload.distribution,
            max_context=workload.max_context,
            cluster=workload.cluster,
            global_batch_size=workload.global_batch_size * 2,
        )
        assert workload_signature(resized) != workload_signature(workload)


class TestWorkloadContext:
    def test_memoises_cost_model_and_batches(self, workload):
        context = WorkloadContext(workload, SOLVER)
        assert context.cost_model is context.cost_model
        assert context.batch(0) is context.batch(0)
        assert context.batch(0).lengths == workload.corpus().batch(0).lengths

    def test_memoises_tuning(self, workload):
        context = WorkloadContext(workload, SOLVER)
        assert context.static_degree() == context.static_degree()
        assert context.megatron_strategy() is context.megatron_strategy()

    def test_systems_persist(self, workload):
        context = WorkloadContext(workload, SOLVER)
        assert context.system("flexsp") is context.system("flexsp")

    def test_shared_cost_model_across_systems(self, workload):
        context = WorkloadContext(workload, SOLVER)
        assert (
            context.system("flexsp").cost_model
            is context.system("deepspeed").cost_model
        )


class TestSweepRunner:
    def test_matches_direct_run(self, workload):
        cell = SweepCell(system="deepspeed", workload=workload, num_iterations=2)
        result = SweepRunner([cell], solver_config=SOLVER, workers=1).run()
        direct = run_system(DeepSpeedUlyssesSystem(workload), workload, 2)
        metrics = result.metrics[0]
        assert isinstance(metrics, CellMetrics)
        assert metrics.mean_iteration_seconds == direct.mean_iteration_seconds
        assert metrics.mean_comm_fraction == direct.mean_comm_fraction
        assert metrics.tokens_per_second_per_gpu == direct.tokens_per_second_per_gpu(
            workload.cluster.num_gpus
        )

    def test_deduplicates_cells(self, workload):
        cell = SweepCell(system="megatron", workload=workload)
        result = SweepRunner([cell, cell, cell], solver_config=SOLVER, workers=1).run()
        assert result.unique_cells == 1
        assert len(result.metrics) == 3
        assert result.metrics[0] is result.metrics[1] is result.metrics[2]

    def test_all_systems_and_lookup(self, workload):
        cells = grid_cells(
            ["flexsp", "deepspeed", "batchada", "megatron"], [workload]
        )
        result = SweepRunner(cells, solver_config=SOLVER, workers=1).run()
        flexsp = result.metric("flexsp", workload.name)
        deepspeed = result.metric("deepspeed", workload.name)
        assert flexsp.mean_iteration_seconds <= deepspeed.mean_iteration_seconds * 1.02
        with pytest.raises(KeyError):
            result.metric("flexsp", "no-such-workload")

    def test_warm_rerun_identical_and_cached(self, workload):
        runner = SweepRunner(
            grid_cells(["flexsp"], [workload], num_iterations=2),
            solver_config=SOLVER,
            workers=1,
        )
        cold = runner.run()
        warm = runner.run()
        for first, second in zip(cold.metrics, warm.metrics):
            assert first.deterministic() == second.deterministic()
        assert warm.metrics[0].plan_cache_hit_rate == 1.0

    def test_empty_sweep_rejected(self):
        with pytest.raises(ValueError, match="at least one cell"):
            SweepRunner([], solver_config=SOLVER, workers=1).run()

    def test_run_accepts_explicit_cells(self, workload, other_workload):
        runner = SweepRunner(solver_config=SOLVER, workers=1)
        result = runner.run(grid_cells(["deepspeed"], [other_workload]))
        assert result.metrics[0].workload == other_workload.name

    def test_scalar_and_vectorized_sweeps_identical(self, workload):
        cells = grid_cells(
            ["flexsp", "deepspeed", "batchada", "megatron"], [workload],
            num_iterations=2,
        )
        fast = SweepRunner(cells, solver_config=SOLVER, workers=1).run()
        scalar = SweepRunner(
            cells, solver_config=SOLVER, workers=1, vectorized=False
        ).run()
        for fast_metrics, scalar_metrics in zip(fast.metrics, scalar.metrics):
            assert fast_metrics.deterministic() == scalar_metrics.deterministic()

    def test_parallel_matches_serial(self, workload, other_workload):
        cells = grid_cells(
            ["deepspeed", "megatron"], [workload, other_workload]
        )
        serial = SweepRunner(cells, solver_config=SOLVER, workers=1).run()
        with SweepRunner(cells, solver_config=SOLVER, workers=2) as parallel:
            fanned = parallel.run()
            assert parallel._slots and parallel._slots[0] is not None
            first_slots = list(parallel._slots)
            again = parallel.run()  # slot pools persist across sweeps
            assert list(parallel._slots) == first_slots
        for a, b in zip(serial.metrics, fanned.metrics):
            assert a.deterministic() == b.deterministic()
        for a, b in zip(serial.metrics, again.metrics):
            assert a.deterministic() == b.deterministic()

    def test_build_system_still_standalone(self, workload):
        # The injection hooks must not break plain construction.
        system = build_system("deepspeed", workload)
        outcome = system.run_iteration(workload.corpus().batch(0).lengths)
        assert outcome.iteration_seconds > 0


class TestColdBatching:
    """Campaign-level cold batching (the serial prewarm pass)."""

    def _cells(self, workload):
        base = SweepCell(
            system="flexsp", workload=workload, num_iterations=2
        )
        no_sort = SweepCell(
            system="flexsp",
            workload=workload,
            num_iterations=2,
            variant=(("sort_sequences", False),),
        )
        return [base, no_sort]

    def test_prewarmed_pass_bit_identical_to_unprewarmed(self, workload):
        cells = self._cells(workload)
        warmed = SweepRunner(cells, solver_config=SOLVER, workers=1).run()
        plain = SweepRunner(
            cells, solver_config=SOLVER, workers=1, prewarm=False
        ).run()
        for a, b in zip(warmed.metrics, plain.metrics):
            assert a.deterministic() == b.deterministic()
        assert plain.prewarm_planned == 0
        assert warmed.prewarm_planned > 0
        assert warmed.prewarm_seconds > 0.0

    def test_prewarmed_cells_replay_from_cache(self, workload):
        cells = self._cells(workload)
        result = SweepRunner(cells, solver_config=SOLVER, workers=1).run()
        for metrics in result.metrics:
            assert metrics.plan_cache_hit_rate == 1.0

    def test_prewarm_dedups_across_shared_planning_contexts(self, workload):
        """The sort ablation changes blasting but not per-shape
        planning, so its solver shares the base cell's planning
        context — the prewarmer must plan the union once and seed
        both caches."""
        cells = self._cells(workload)
        runner = SweepRunner(cells, solver_config=SOLVER, workers=1)
        result = runner.run()
        context = runner.context(workload)
        solvers = [
            context.system("flexsp", cell.variant).solver for cell in cells
        ]
        assert solvers[0].context == solvers[1].context
        assert len(solvers[0].cache) > 0
        assert len(solvers[1].cache) > 0
        union = {
            key[0]
            for solver in solvers
            for key, __ in solver.cache.snapshot()
        }
        assert result.prewarm_planned == len(union)

    def test_prewarm_stage_breakdown_recorded(self, workload):
        cells = self._cells(workload)
        warmed = SweepRunner(cells, solver_config=SOLVER, workers=1).run()
        stages = dict(warmed.prewarm_stage_seconds)
        assert stages.get("lpt", 0.0) > 0.0
        # Unprewarmed cells carry the breakdown on the cell instead.
        plain = SweepRunner(
            cells, solver_config=SOLVER, workers=1, prewarm=False
        ).run()
        cell_stages = dict(plain.metrics[0].stage_seconds)
        assert cell_stages.get("lpt", 0.0) > 0.0

    def test_prewarm_skips_disabled_plan_caches(self, workload):
        config = SolverConfig(
            backend="greedy", num_trials=2, plan_cache=False
        )
        cells = [SweepCell(system="flexsp", workload=workload)]
        result = SweepRunner(cells, solver_config=config, workers=1).run()
        assert result.prewarm_planned == 0
        assert result.metrics[0].feasible


class TestSpillBatching:
    """Batched per-worker spills: fewer store writes, identical state."""

    def _cells(self, workload, other_workload):
        return grid_cells(
            ["flexsp", "deepspeed"], [workload, other_workload],
            num_iterations=2,
        )

    def test_rejects_negative_spill_batch(self):
        with pytest.raises(ValueError, match="spill_batch"):
            SweepRunner(solver_config=SOLVER, workers=1, spill_batch=-1)

    def test_batched_drain_writes_less_than_per_cell_spills(
        self, workload, other_workload, tmp_path
    ):
        cells = self._cells(workload, other_workload)
        per_cell = SweepRunner(
            cells, solver_config=SOLVER, workers=1,
            store=tmp_path / "per_cell", spill_batch=1,
        ).run()
        batched = SweepRunner(
            cells, solver_config=SOLVER, workers=1,
            store=tmp_path / "batched", spill_batch=0,
        ).run()
        # Same measurements at every cadence...
        for a, b in zip(per_cell.metrics, batched.metrics):
            assert a.deterministic() == b.deterministic()
        # ...but the drain cadence merge-saves once per dirty workload
        # instead of once per state-changing cell.
        assert batched.store_stats.writes < per_cell.store_stats.writes
        assert batched.store_stats.writes == 2  # one per workload

    def test_per_cell_write_attribution_sums_to_the_total(
        self, workload, other_workload, tmp_path
    ):
        cells = self._cells(workload, other_workload)
        result = SweepRunner(
            cells, solver_config=SOLVER, workers=1,
            store=tmp_path, spill_batch=1,
        ).run()
        assert (
            sum(m.store_writes for m in result.metrics)
            == result.store_stats.writes
        )

    def test_batched_store_restores_bit_identically(
        self, workload, other_workload, tmp_path
    ):
        cells = self._cells(workload, other_workload)
        cold = SweepRunner(
            cells, solver_config=SOLVER, workers=1, store=tmp_path
        ).run()
        restored = SweepRunner(
            cells, solver_config=SOLVER, workers=1, store=tmp_path
        ).run()
        for a, b in zip(cold.metrics, restored.metrics):
            assert a.deterministic() == b.deterministic()
        assert restored.metric("flexsp", workload.name).plan_cache_hit_rate == 1.0
        # A fully warm pass learns nothing and rewrites nothing.
        assert restored.store_stats.writes == 0
        assert restored.store_stats.hits == 2

    def test_parallel_batched_spills_drain_to_the_store(
        self, workload, other_workload, tmp_path
    ):
        cells = self._cells(workload, other_workload)
        with SweepRunner(
            cells, solver_config=SOLVER, workers=2, store=tmp_path
        ) as fanned:
            first = fanned.run()
            # Drain collection is best-effort per worker (the pool does
            # not guarantee one flush task lands on each), so only the
            # stats' presence is asserted here; exact write counts are
            # pinned by the deterministic serial tests above.
            assert first.store_stats is not None
        # After close() — the hard durability point (drain + worker
        # exit flush) — a fresh serial runner restores everything the
        # workers measured: warm and bit-identical.
        restored = SweepRunner(
            cells, solver_config=SOLVER, workers=1, store=tmp_path
        ).run()
        for a, b in zip(first.metrics, restored.metrics):
            assert a.deterministic() == b.deterministic()
        assert restored.metric("flexsp", workload.name).plan_cache_hit_rate == 1.0

    def test_no_store_reports_no_stats(self, workload):
        result = SweepRunner(
            grid_cells(["deepspeed"], [workload]),
            solver_config=SOLVER,
            workers=1,
        ).run()
        assert result.store_stats is None
        assert result.metrics[0].store_writes == 0


class TestShardScheduler:
    """The work-stealing dispatch policy, in isolation."""

    def test_rejects_nonpositive_slots(self, workload):
        with pytest.raises(ValueError, match="slots"):
            _ShardScheduler(grid_cells(["flexsp"], [workload]), 0)

    def test_groups_cells_into_one_shard_per_workload(
        self, workload, other_workload
    ):
        cells = grid_cells(
            ["flexsp", "deepspeed"], [workload, other_workload]
        )
        scheduler = _ShardScheduler(cells, slots=2)
        assert scheduler.shard_count == 2
        assert scheduler.remaining() == 4

    def test_lpt_assigns_heaviest_shard_to_least_loaded_slot(
        self, workload, other_workload
    ):
        # Shard 0 (workload, 3 cells) outweighs shard 1 (other, 1 cell).
        cells = grid_cells(["flexsp", "deepspeed", "megatron"], [workload])
        cells += grid_cells(["flexsp"], [other_workload])
        scheduler = _ShardScheduler(cells, slots=2)
        assert scheduler.owners == [[0], [1]]

    def test_own_shard_is_served_in_request_order(self, workload):
        cells = grid_cells(["flexsp", "deepspeed", "megatron"], [workload])
        scheduler = _ShardScheduler(cells, slots=1)
        served = [scheduler.next_cell(0) for _ in cells]
        assert served == [(cell, False) for cell in cells]
        assert scheduler.next_cell(0) is None

    def test_idle_slot_steals_from_the_tail_of_the_heaviest_shard(
        self, workload, other_workload
    ):
        cells = grid_cells(["flexsp", "deepspeed", "megatron"], [workload])
        cells += grid_cells(["flexsp"], [other_workload])
        scheduler = _ShardScheduler(cells, slots=2)
        assert scheduler.next_cell(1) == (cells[3], False)  # own shard
        # Slot 1's shard is dry: it steals the *last* cell of slot 0's
        # shard — the owner keeps eating from the head.
        assert scheduler.next_cell(1) == (cells[2], True)
        assert scheduler.next_cell(0) == (cells[0], False)

    def test_single_workload_forces_steals(self, workload):
        cells = grid_cells(["flexsp", "deepspeed"], [workload])
        scheduler = _ShardScheduler(cells, slots=2)
        assert scheduler.owners == [[0], []]
        cell, stolen = scheduler.next_cell(1)
        assert stolen
        assert cell == cells[-1]


class TestSchedulerProperty:
    """Property: any polling order serves every cell exactly once."""

    def test_property_every_cell_served_exactly_once(
        self, workload, other_workload
    ):
        from hypothesis import given, settings
        from hypothesis import strategies as st

        workloads = [workload, other_workload]
        systems = ["flexsp", "deepspeed", "megatron"]

        @given(
            picks=st.lists(
                st.tuples(
                    st.integers(0, len(workloads) - 1),
                    st.integers(0, len(systems) - 1),
                ),
                min_size=1,
                max_size=12,
            ),
            slots=st.integers(1, 4),
            data=st.data(),
        )
        @settings(max_examples=60, deadline=None)
        def check(picks, slots, data):
            cells = [
                SweepCell(system=systems[s], workload=workloads[w])
                for w, s in picks
            ]
            scheduler = _ShardScheduler(cells, slots)
            served = []
            while scheduler.remaining():
                slot = data.draw(st.integers(0, slots - 1))
                nxt = scheduler.next_cell(slot)
                if nxt is not None:
                    served.append(nxt[0])
            assert len(served) == len(cells)
            assert sorted(map(id, served)) == sorted(map(id, cells))
            assert all(
                scheduler.next_cell(slot) is None for slot in range(slots)
            )

        check()


class TestScaleOut:
    """The sharded fan-out path: bit-identity, prewarm, telemetry."""

    def test_forced_steal_stays_bit_identical(self, workload):
        # One workload, two slots: slot 1 owns nothing, so every cell
        # it runs is a steal — the adversarial case for the identity
        # contract (a stolen cell runs against a duplicate context).
        cells = grid_cells(
            ["flexsp", "deepspeed", "megatron"], [workload],
            num_iterations=2,
        )
        serial = SweepRunner(cells, solver_config=SOLVER, workers=1).run()
        with SweepRunner(
            cells, solver_config=SOLVER, workers=2
        ) as runner:
            parallel = runner.run()
        for a, b in zip(serial.metrics, parallel.metrics):
            assert a.deterministic() == b.deterministic()
        assert sum(t.steals for t in parallel.worker_telemetry) >= 1
        assert sum(t.cells for t in parallel.worker_telemetry) == len(cells)

    def test_context_builds_bounded_by_workloads_plus_steals(
        self, workload, other_workload
    ):
        cells = grid_cells(
            ["flexsp", "deepspeed"], [workload, other_workload]
        )
        with SweepRunner(
            cells, solver_config=SOLVER, workers=2
        ) as runner:
            result = runner.run()
        telemetry = result.worker_telemetry
        assert len(telemetry) == 2
        builds = sum(t.context_builds for t in telemetry)
        steals = sum(t.steals for t in telemetry)
        assert builds <= 2 + steals  # unique workloads + duplicates paid
        assert all(t.pid != 0 for t in telemetry)

    def test_parallel_prewarm_plans_cold_flexsp_cells(self, workload):
        # The workers>1 prewarm restriction is gone: a cold parallel
        # pass batch-plans up front and ships the state to the slots,
        # so the workers' solve phase runs fully warm.
        cells = grid_cells(["flexsp"], [workload], num_iterations=2)
        with SweepRunner(
            cells, solver_config=SOLVER, workers=2
        ) as runner:
            result = runner.run()
        assert result.prewarm_planned > 0
        assert result.metrics[0].plan_cache_hit_rate == 1.0

    def test_parallel_prewarm_seeds_through_the_store(
        self, workload, tmp_path
    ):
        cells = grid_cells(["flexsp"], [workload], num_iterations=2)
        serial = SweepRunner(
            cells, solver_config=SOLVER, workers=1
        ).run()
        with SweepRunner(
            cells, solver_config=SOLVER, workers=2, store=tmp_path
        ) as runner:
            parallel = runner.run()
        assert parallel.prewarm_planned > 0
        assert parallel.metrics[0].plan_cache_hit_rate == 1.0
        for a, b in zip(serial.metrics, parallel.metrics):
            assert a.deterministic() == b.deterministic()

    def test_serial_pass_reports_one_telemetry_row(self, workload):
        import os

        runner = SweepRunner(
            grid_cells(["deepspeed"], [workload]),
            solver_config=SOLVER,
            workers=1,
        )
        first = runner.run()
        assert len(first.worker_telemetry) == 1
        row = first.worker_telemetry[0]
        assert row.pid == os.getpid()
        assert row.cells == 1
        assert row.context_builds == 1
        assert row.steals == 0
        # Telemetry is per-pass: a warm rerun builds no new context.
        again = runner.run()
        assert again.worker_telemetry[0].context_builds == 0

    def test_rebaseline_prevents_double_counted_retry_writes(
        self, workload, tmp_path
    ):
        # Satellite: the broken-pool retry re-anchors the counter
        # baseline, so writes the failed attempt already performed are
        # attributed to no pass — the retry's delta stays honest.
        runner = SweepRunner(
            grid_cells(["deepspeed"], [workload]),
            solver_config=SOLVER,
            workers=1,
            store=tmp_path,
        )
        first = runner.run()
        assert first.store_stats.writes > 0
        runner._rebaseline_counters()
        assert runner._counters_attributed == runner._counter_totals()
        # Everything counted so far is attributed: the next delta is 0.
        assert runner._store_stats_delta().writes == 0


class TestFaultRecovery:
    """Graduated recovery under the deterministic fault plane: every
    schedule must yield metrics bit-identical to the fault-free serial
    pass, with the recovery accounted in ``SweepResult.fault_stats``
    and no worker pool left behind."""

    def _serial(self, cells):
        return SweepRunner(cells, solver_config=SOLVER, workers=1).run()

    def test_no_faults_means_no_fault_stats(self, workload):
        result = self._serial(grid_cells(["deepspeed"], [workload]))
        assert result.fault_stats is None

    def test_worker_kill_recovers_bit_identical(
        self, workload, other_workload
    ):
        from repro.core.faults import FaultSchedule
        from repro.core.pools import live_pool_count

        cells = grid_cells(
            ["flexsp", "deepspeed"], [workload, other_workload]
        )
        serial = self._serial(cells)
        baseline_pools = live_pool_count()
        schedule = FaultSchedule.parse("worker_kill@cell:0")
        with SweepRunner(
            cells,
            solver_config=SOLVER,
            workers=2,
            fault_schedule=schedule,
        ) as runner:
            chaotic = runner.run()
        stats = chaotic.fault_stats
        assert stats is not None
        assert dict(stats.injections) == {"worker_kill@cell": 1}
        assert stats.cell_retries >= 1
        assert stats.pool_restarts >= 1
        for a, b in zip(serial.metrics, chaotic.metrics):
            assert a.deterministic() == b.deterministic()
        assert live_pool_count() == baseline_pools

    def test_repeated_death_degrades_to_serial_bit_identical(
        self, workload
    ):
        from repro.core.faults import FaultSchedule
        from repro.core.pools import live_pool_count

        cells = grid_cells(
            ["flexsp", "deepspeed", "megatron"], [workload]
        )
        serial = self._serial(cells)
        baseline_pools = live_pool_count()
        schedule = FaultSchedule.parse("worker_kill@cell:*")
        with SweepRunner(
            cells,
            solver_config=SOLVER,
            workers=2,
            fault_schedule=schedule,
            max_slot_restarts=0,
        ) as runner:
            chaotic = runner.run()
        stats = chaotic.fault_stats
        assert stats is not None
        assert stats.total_injections >= 1
        # Every slot retires after its first death; everything left
        # drains on the final serial rung.
        assert stats.degraded_cells >= 1
        for a, b in zip(serial.metrics, chaotic.metrics):
            assert a.deterministic() == b.deterministic()
        assert live_pool_count() == baseline_pools

    def test_watchdog_kills_hung_cell_and_recovers(self, workload):
        import time

        from repro.core.faults import FaultSchedule

        cells = grid_cells(["deepspeed", "megatron"], [workload])
        serial = self._serial(cells)
        schedule = FaultSchedule.parse("hang@cell:0", hang_seconds=30.0)
        started = time.perf_counter()
        with SweepRunner(
            cells,
            solver_config=SOLVER,
            workers=2,
            fault_schedule=schedule,
            watchdog_seconds=1.5,
        ) as runner:
            chaotic = runner.run()
        wall = time.perf_counter() - started
        assert wall < schedule.hang_seconds / 2  # watchdog, not the nap
        stats = chaotic.fault_stats
        assert stats is not None
        assert stats.watchdog_kills == 1
        for a, b in zip(serial.metrics, chaotic.metrics):
            assert a.deterministic() == b.deterministic()

    def test_broken_pass_retry_keeps_completed_cells(
        self, workload, monkeypatch
    ):
        # Satellite: the whole-pass BrokenProcessPool retry used to
        # recompute every cell; now the retry sees prior completions
        # in ``results`` and recomputes only what is missing.
        from concurrent.futures.process import BrokenProcessPool

        cells = grid_cells(
            ["flexsp", "deepspeed", "megatron"], [workload]
        )
        serial = self._serial(cells)
        runner = SweepRunner(cells, solver_config=SOLVER, workers=2)
        original = SweepRunner._run_sharded
        attempts = []

        def flaky(self, cells_arg, preseed, results, ran, steals, recovery):
            todo = [c for c in cells_arg if c not in results]
            attempts.append(list(todo))
            if len(attempts) == 1:
                # Finish two cells, then die catastrophically.
                for cell in todo[:2]:
                    results[cell] = self._run_cell_inprocess(cell)
                raise BrokenProcessPool("injected pass failure")
            return original(
                self, cells_arg, preseed, results, ran, steals, recovery
            )

        monkeypatch.setattr(SweepRunner, "_run_sharded", flaky)
        with runner:
            result = runner.run()
        assert len(attempts) == 2
        assert set(attempts[1]) == set(cells) - set(attempts[0][:2])
        for a, b in zip(serial.metrics, result.metrics):
            assert a.deterministic() == b.deterministic()


class TestWorkersDefaults:
    """Regression: ``SweepRunner(workers=None)`` used to mean
    ``os.cpu_count()`` while the CLI's ``--workers`` defaulted to 1 —
    a library caller could fan out by accident.  The library now
    matches the CLI: None = serial, 0 = every CPU."""

    def test_workers_none_means_serial(self, monkeypatch):
        import os

        monkeypatch.setattr(os, "cpu_count", lambda: 8)
        assert SweepRunner().workers == 1
        assert SweepRunner(workers=None).workers == 1

    def test_workers_zero_means_all_cpus(self, monkeypatch):
        import os

        monkeypatch.setattr(os, "cpu_count", lambda: 8)
        assert SweepRunner(workers=0).workers == 8
        assert SweepRunner(workers=0, solver_workers=0).solver_workers == 8

    def test_negative_workers_rejected(self):
        with pytest.raises(ValueError, match="workers"):
            SweepRunner(workers=-1)
        with pytest.raises(ValueError, match="solver_workers"):
            SweepRunner(solver_workers=-2)

    def test_solver_workers_none_still_adopts_config(self):
        config = SolverConfig(workers=3)
        assert SweepRunner(solver_config=config).solver_workers == 3
        assert SweepRunner().solver_workers == 1
