"""Tests for repro.core.types: plan data structures."""

import pytest

from repro.core.types import (
    GroupAssignment,
    IterationPlan,
    MicroBatchPlan,
    SequenceBatch,
)


def group(degree, start, lengths):
    return GroupAssignment(
        degree=degree,
        device_ranks=tuple(range(start, start + degree)),
        lengths=tuple(lengths),
    )


class TestSequenceBatch:
    def test_aggregates(self):
        batch = SequenceBatch(lengths=(5, 3, 9))
        assert batch.total_tokens == 17
        assert batch.max_length == 9

    def test_sorted_copy(self):
        batch = SequenceBatch(lengths=(5, 3, 9))
        assert batch.sorted().lengths == (3, 5, 9)
        assert batch.lengths == (5, 3, 9)

    def test_rejects_empty(self):
        with pytest.raises(ValueError, match="non-empty"):
            SequenceBatch(lengths=())

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError, match="positive"):
            SequenceBatch(lengths=(1, 0))


class TestGroupAssignment:
    def test_rejects_non_power_of_two_degree(self):
        with pytest.raises(ValueError, match="power of two"):
            GroupAssignment(degree=3, device_ranks=(0, 1, 2), lengths=(10,))

    def test_rejects_rank_count_mismatch(self):
        with pytest.raises(ValueError, match="exactly"):
            GroupAssignment(degree=4, device_ranks=(0, 1), lengths=(10,))

    def test_tokens_per_device(self):
        g = group(4, 0, [100, 300])
        assert g.tokens == 400
        assert g.tokens_per_device == 100.0


class TestMicroBatchPlan:
    def test_rejects_overlapping_devices(self):
        with pytest.raises(ValueError, match="more than one"):
            MicroBatchPlan(groups=(group(2, 0, [10]), group(2, 1, [10])))

    def test_rejects_empty_groups(self):
        with pytest.raises(ValueError, match="empty groups"):
            MicroBatchPlan(groups=(group(2, 0, [10]), group(2, 2, [])))

    def test_degree_histogram(self):
        plan = MicroBatchPlan(
            groups=(group(8, 0, [10]), group(4, 8, [10]), group(4, 12, [10]))
        )
        assert plan.degree_histogram() == {8: 1, 4: 2}

    def test_layout_string_matches_table3_format(self):
        plan = MicroBatchPlan(
            groups=(group(32, 0, [10]), group(8, 32, [5]), group(8, 40, [5]))
        )
        assert plan.layout() == "<32, 8 x 2>"

    def test_devices_used(self):
        plan = MicroBatchPlan(groups=(group(8, 0, [10]), group(4, 8, [10])))
        assert plan.devices_used == 12


class TestIterationPlan:
    def test_aggregates(self):
        mb = MicroBatchPlan(groups=(group(4, 0, [100, 50]),))
        plan = IterationPlan(microbatches=(mb, mb))
        assert plan.num_microbatches == 2
        assert plan.tokens == 300
        assert plan.num_sequences == 4

    def test_rejects_empty(self):
        with pytest.raises(ValueError, match="at least one"):
            IterationPlan(microbatches=())

    def test_layouts_per_microbatch(self):
        a = MicroBatchPlan(groups=(group(8, 0, [10]),))
        b = MicroBatchPlan(groups=(group(4, 0, [10]), group(4, 4, [9])))
        plan = IterationPlan(microbatches=(a, b))
        assert plan.layouts() == ["<8>", "<4 x 2>"]

    def test_assignment_by_degree_collects_across_microbatches(self):
        a = MicroBatchPlan(groups=(group(8, 0, [100]),))
        b = MicroBatchPlan(groups=(group(8, 0, [200]), group(2, 8, [30, 40])))
        plan = IterationPlan(microbatches=(a, b))
        by_degree = plan.assignment_by_degree()
        assert sorted(by_degree[8]) == [100, 200]
        assert sorted(by_degree[2]) == [30, 40]
