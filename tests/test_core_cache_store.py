"""Tests for repro.core.cache_store: the persistent cross-process store.

The store's contract is exact restoration: a process that loads
spilled state must behave bit-identically to the process that spilled
it — same cost model, same plans, same
:class:`~repro.core.types.SolveStats` counters on subsequent solves —
and any corrupted, truncated or foreign file must read as *cold*,
never as an error.

The lifecycle half (manifest accounting and :meth:`CacheStore.prune`)
adds three adversarial suites: Hypothesis properties over the
eviction policy (age-cap safety, LRU order, byte-cap satisfaction,
idempotence), a multi-process stress test interleaving merge-saves
with concurrent prunes (no lost entries under non-evicting caps, no
torn files ever), and corruption fuzzing of both the data files and
the manifest (always cold, never fatal, always rewritten cleanly).
"""

from __future__ import annotations

import dataclasses
import json
import multiprocessing
import os
import time

import hypothesis.strategies as st
import pytest
from hypothesis import example, given, settings

from repro.core.cache_store import (
    MANIFEST_NAME,
    STORE_VERSION,
    CacheStore,
    WorkloadState,
    context_digest,
    entries_from_cache,
    preload_cache,
    signature_digest,
)
from repro.core.plan_cache import PlanCache, cache_context
from repro.core.solver import FlexSPSolver, SolverConfig
from repro.cost.model import CostModel

SIGNATURE = ("gpt-7b", "github", 32 * 1024, 8)
OTHER_SIGNATURE = ("gpt-7b", "wikipedia", 32 * 1024, 8)

lengths_strategy = st.lists(
    st.integers(min_value=64, max_value=24_000), min_size=1, max_size=32
)


def greedy_solver(model) -> FlexSPSolver:
    return FlexSPSolver(model, SolverConfig(num_trials=3, backend="greedy"))


def spill(store: CacheStore, solver: FlexSPSolver, signature) -> None:
    state = WorkloadState(signature=repr(signature))
    state.coeffs = solver.model.coeffs
    state.comm_model = solver.model.comm_model
    digest = context_digest(solver.config.planner, solver.config.backend)
    state.plans[digest] = entries_from_cache(solver.cache)
    store.save(signature, state)


def restore(store: CacheStore, model, signature) -> FlexSPSolver:
    solver = greedy_solver(model)
    state = store.load(signature)
    assert state is not None
    digest = context_digest(solver.config.planner, solver.config.backend)
    context = cache_context(
        solver.model, solver.config.planner, solver.config.backend
    )
    preload_cache(solver.cache, state.plans[digest], context)
    return solver


def stats_counters(plan):
    """SolveStats minus the wall-clock field (host-dependent)."""
    assert plan.stats is not None
    return (
        plan.stats.cache_hits,
        plan.stats.dedup_hits,
        plan.stats.cache_misses,
        plan.stats.trials,
        plan.stats.microbatches,
    )


class TestRoundTripProperties:
    @given(lengths=lengths_strategy)
    @settings(max_examples=25, deadline=None)
    def test_restored_cache_solves_bit_identically(
        self, cost_model8, tmp_path_factory, lengths
    ):
        """spill -> restore -> solve must equal the warm original: same
        plans, same predicted times, same SolveStats counters."""
        store = CacheStore(tmp_path_factory.mktemp("store"))
        original = greedy_solver(cost_model8)
        original.solve(tuple(lengths))
        spill(store, original, SIGNATURE)

        restored = restore(store, cost_model8, SIGNATURE)
        warm = original.solve(tuple(lengths))
        fresh = restored.solve(tuple(lengths))
        assert fresh.microbatches == warm.microbatches
        assert fresh.predicted_time == warm.predicted_time
        assert stats_counters(fresh) == stats_counters(warm)
        assert fresh.stats.planner_calls == 0

    @given(lengths=lengths_strategy)
    @settings(max_examples=25, deadline=None)
    def test_restored_coeffs_are_bit_identical(
        self, cost_model8, tmp_path_factory, lengths
    ):
        """Cost-model fits survive the JSON round trip exactly."""
        store = CacheStore(tmp_path_factory.mktemp("store"))
        solver = greedy_solver(cost_model8)
        solver.solve(tuple(lengths))
        spill(store, solver, SIGNATURE)
        state = store.load(SIGNATURE)
        assert state.coeffs == cost_model8.coeffs
        restored_model = CostModel(
            coeffs=state.coeffs,
            cluster=cost_model8.cluster,
            comm_model=state.comm_model,
        )
        assert restored_model == CostModel(
            coeffs=cost_model8.coeffs,
            cluster=cost_model8.cluster,
            comm_model=cost_model8.comm_model,
        )

    def test_infeasible_entries_round_trip(self, cost_model8, tmp_path):
        """Shapes proven unplannable stay unplannable after restore."""
        store = CacheStore(tmp_path)
        cache = PlanCache()
        context = cache_context(
            cost_model8, SolverConfig().planner, "greedy"
        )
        cache.store(((10**9,), context), None, None)  # infeasible marker
        state = WorkloadState(signature=repr(SIGNATURE))
        state.plans["ctx"] = entries_from_cache(cache)
        store.save(SIGNATURE, state)
        restored = store.load(SIGNATURE)
        (shape, plan, predicted) = restored.plans["ctx"][0]
        assert shape == (10**9,)
        assert plan is None and predicted is None


class TestCorruptionIsIgnored:
    def _path(self, store: CacheStore):
        return store.root / f"workload-{signature_digest(SIGNATURE)}.json"

    def test_missing_file_loads_cold(self, tmp_path):
        assert CacheStore(tmp_path).load(SIGNATURE) is None

    def test_garbage_bytes_load_cold(self, tmp_path):
        store = CacheStore(tmp_path)
        self._path(store).write_bytes(b"\x00\xffnot json at all")
        assert store.load(SIGNATURE) is None

    def test_truncated_json_loads_cold(self, tmp_path, cost_model8):
        store = CacheStore(tmp_path)
        solver = greedy_solver(cost_model8)
        solver.solve((4096, 2048, 1024))
        spill(store, solver, SIGNATURE)
        text = self._path(store).read_text()
        self._path(store).write_text(text[: len(text) // 2])
        assert store.load(SIGNATURE) is None

    def test_wrong_version_loads_cold(self, tmp_path):
        store = CacheStore(tmp_path)
        store.save(SIGNATURE, WorkloadState(signature=repr(SIGNATURE)))
        payload = json.loads(self._path(store).read_text())
        payload["version"] = STORE_VERSION + 1
        self._path(store).write_text(json.dumps(payload))
        assert store.load(SIGNATURE) is None

    def test_signature_mismatch_loads_cold(self, tmp_path):
        """A digest collision (or stale schema) must read as cold."""
        store = CacheStore(tmp_path)
        store.save(
            OTHER_SIGNATURE, WorkloadState(signature=repr(OTHER_SIGNATURE))
        )
        foreign = store.root / (
            f"workload-{signature_digest(OTHER_SIGNATURE)}.json"
        )
        foreign.rename(self._path(store))
        assert store.load(SIGNATURE) is None

    def test_save_recovers_after_corruption(self, tmp_path, cost_model8):
        store = CacheStore(tmp_path)
        self._path(store).write_text("{broken")
        solver = greedy_solver(cost_model8)
        solver.solve((8192, 4096))
        spill(store, solver, SIGNATURE)  # must not raise
        assert store.load(SIGNATURE) is not None


class TestMergeAndKeys:
    def test_save_merges_plan_entries(self, tmp_path):
        store = CacheStore(tmp_path)
        first = WorkloadState(signature=repr(SIGNATURE), static_degree=8)
        first.plans["ctx"] = [((1024,), None, None)]
        store.save(SIGNATURE, first)
        second = WorkloadState(signature=repr(SIGNATURE))
        second.plans["ctx"] = [((2048,), None, None)]
        second.megatron_strategy = (2, 2, 2)
        store.save(SIGNATURE, second)
        merged = store.load(SIGNATURE)
        assert {e[0] for e in merged.plans["ctx"]} == {(1024,), (2048,)}
        # Scalars survive merging: the degree from the first spill, the
        # strategy from the second.
        assert merged.static_degree == 8
        assert merged.megatron_strategy == (2, 2, 2)

    def test_save_rejects_mismatched_signature(self, tmp_path):
        with pytest.raises(ValueError, match="signature"):
            CacheStore(tmp_path).save(
                SIGNATURE, WorkloadState(signature=repr(OTHER_SIGNATURE))
            )

    def test_digests_are_deterministic_and_distinct(self):
        assert signature_digest(SIGNATURE) == signature_digest(SIGNATURE)
        assert signature_digest(SIGNATURE) != signature_digest(OTHER_SIGNATURE)
        config = SolverConfig()
        assert context_digest(config.planner, "milp") != context_digest(
            config.planner, "greedy"
        )
        ablated = dataclasses.replace(config.planner, bucketing="naive")
        assert context_digest(config.planner, "milp") != context_digest(
            ablated, "milp"
        )

    def test_signatures_listing(self, tmp_path):
        store = CacheStore(tmp_path)
        assert store.signatures() == []
        store.save(SIGNATURE, WorkloadState(signature=repr(SIGNATURE)))
        assert store.signatures() == [signature_digest(SIGNATURE)]


# ---------------------------------------------------------------------------
# Lifecycle: manifest accounting, eviction, concurrency, fuzzing.
# ---------------------------------------------------------------------------

#: A deterministic "now" for eviction tests (prune takes ``now=`` and
#: ``touch`` backdates both the manifest and the file mtime, so the
#: policy sees a fully controlled clock).
NOW = 1_700_000_000.0


def _aged_store(root, ages_days: list[float]) -> tuple[CacheStore, list[tuple]]:
    """A store with one workload file per age (in days before NOW)."""
    store = CacheStore(root)
    signatures = []
    for index, age in enumerate(ages_days):
        signature = ("aged", index)
        state = WorkloadState(signature=repr(signature))
        state.plans["ctx"] = [
            ((shape,), None, None) for shape in range(index % 3 + 1)
        ]
        store.save(signature, state)
        store.touch(signature, when=NOW - age * 86400.0)
        signatures.append(signature)
    return store, signatures


def _manifest_files(store: CacheStore) -> dict:
    return json.loads((store.root / MANIFEST_NAME).read_text())["files"]


class TestManifestAccounting:
    def test_save_records_last_used_entry_count_and_bytes(self, tmp_path):
        store = CacheStore(tmp_path)
        state = WorkloadState(signature=repr(SIGNATURE), static_degree=8)
        state.plans["ctx"] = [((1024,), None, None), ((2048,), None, None)]
        before = time.time()
        store.save(SIGNATURE, state)
        path = store._path(SIGNATURE)
        entry = _manifest_files(store)[path.name]
        assert entry["bytes"] == path.stat().st_size
        assert entry["entry_count"] == 3  # two plan entries + the degree
        assert entry["last_used"] >= before

    def test_load_bumps_last_used(self, tmp_path):
        """A warm load freshens the file against LRU eviction — via
        the mtime (O(1), lock-free), which the reconciled accounting
        folds into ``last_used``."""
        store = CacheStore(tmp_path)
        store.save(SIGNATURE, WorkloadState(signature=repr(SIGNATURE)))
        path = store._path(SIGNATURE)
        store.touch(SIGNATURE, when=NOW)
        assert _manifest_files(store)[path.name]["last_used"] == NOW
        assert store.load(SIGNATURE) is not None
        assert store._reconciled_files()[path.name]["last_used"] > NOW
        # ...and a fresh pruner consequently leaves the hot file alone.
        result = CacheStore(tmp_path).prune(max_age_days=1.0, now=NOW)
        assert result.evicted == ()

    def test_counters_track_hits_misses_writes(self, tmp_path):
        store = CacheStore(tmp_path)
        assert store.load(SIGNATURE) is None
        store.save(SIGNATURE, WorkloadState(signature=repr(SIGNATURE)))
        assert store.load(SIGNATURE) is not None
        assert store.counters() == {
            "hits": 1,
            "misses": 1,
            "writes": 1,
            "evictions": 0,
            "lock_waits": 0,
            "lock_breaks": 0,
        }

    def test_lock_waits_counts_contended_saves(self, tmp_path):
        import fcntl

        store = CacheStore(tmp_path)
        state = WorkloadState(signature=repr(SIGNATURE))
        store.save(SIGNATURE, state)
        assert store.counters()["lock_waits"] == 0
        # Hold the per-workload write lock from "another process" and
        # release it from a timer, so the contended save both waits
        # and completes.
        import threading

        lock_path = store._path(SIGNATURE).with_suffix(".lock")
        held = open(lock_path, "w")
        fcntl.flock(held.fileno(), fcntl.LOCK_EX)
        timer = threading.Timer(
            0.2, lambda: fcntl.flock(held.fileno(), fcntl.LOCK_UN)
        )
        timer.start()
        try:
            store.save(SIGNATURE, state)
        finally:
            timer.join()
            held.close()
        assert store.counters()["lock_waits"] == 1

    def test_stats_reconcile_disk_and_counters(self, tmp_path):
        store = CacheStore(tmp_path)
        state = WorkloadState(signature=repr(SIGNATURE))
        state.plans["ctx"] = [((1024,), None, None)]
        store.save(SIGNATURE, state)
        store.save(
            OTHER_SIGNATURE, WorkloadState(signature=repr(OTHER_SIGNATURE))
        )
        stats = store.stats()
        assert stats.files == 2
        assert stats.entries == 1
        assert stats.bytes == sum(
            p.stat().st_size for p in tmp_path.glob("workload-*.json")
        )
        assert stats.writes == 2

    def test_scan_adopts_files_the_manifest_missed(self, tmp_path):
        """The directory is the source of truth: a data file written
        without its accounting (lost manifest update, foreign writer)
        is adopted with its mtime as last_used."""
        store = CacheStore(tmp_path)
        store.save(SIGNATURE, WorkloadState(signature=repr(SIGNATURE)))
        (tmp_path / MANIFEST_NAME).unlink()
        files, size, __ = store.scan()
        assert files == 1
        assert size == store._path(SIGNATURE).stat().st_size

    def test_scan_drops_entries_for_vanished_files(self, tmp_path):
        store = CacheStore(tmp_path)
        store.save(SIGNATURE, WorkloadState(signature=repr(SIGNATURE)))
        store._path(SIGNATURE).unlink()
        assert store.scan() == (0, 0, 0)


class TestPrune:
    def test_age_cap_evicts_only_older_files(self, tmp_path):
        __, signatures = _aged_store(tmp_path, [0.0, 1.0, 5.0, 10.0])
        pruner = CacheStore(tmp_path)
        result = pruner.prune(max_age_days=3.0, now=NOW)
        assert len(result.evicted) == 2
        assert pruner.load(signatures[0]) is not None
        assert pruner.load(signatures[1]) is not None
        assert pruner.load(signatures[2]) is None  # evicted: cold, not fatal
        assert pruner.load(signatures[3]) is None

    def test_byte_cap_evicts_lru_first(self, tmp_path):
        store, signatures = _aged_store(tmp_path, [0.0, 1.0, 5.0, 10.0])
        sizes = {
            name: entry["bytes"] for name, entry in _manifest_files(store).items()
        }
        keep_newest_two = sum(
            sizes[store._path(signatures[i]).name] for i in (0, 1)
        )
        pruner = CacheStore(tmp_path)
        result = pruner.prune(max_store_bytes=keep_newest_two, now=NOW)
        assert pruner.load(signatures[0]) is not None
        assert pruner.load(signatures[1]) is not None
        assert pruner.load(signatures[3]) is None
        assert result.bytes_kept <= keep_newest_two

    def test_prune_protects_this_instances_working_set(self, tmp_path):
        """A prune issued mid-campaign must never evict what the
        campaign itself saved or loaded, even under a zero byte cap."""
        store, signatures = _aged_store(tmp_path, [0.0, 4.0])
        result = store.prune(max_store_bytes=0, max_age_days=1.0, now=NOW)
        assert result.evicted == ()
        assert store.load(signatures[0]) is not None
        assert store.load(signatures[1]) is not None

    def test_unprotected_prune_evicts_everything_under_zero_cap(
        self, tmp_path
    ):
        store, signatures = _aged_store(tmp_path, [0.0, 4.0])
        result = store.prune(
            max_store_bytes=0, now=NOW, protect_touched=False
        )
        assert len(result.evicted) == 2
        assert store.load(signatures[0]) is None

    def test_dry_run_deletes_nothing(self, tmp_path):
        __, signatures = _aged_store(tmp_path, [0.0, 5.0])
        pruner = CacheStore(tmp_path)
        result = pruner.prune(max_age_days=1.0, now=NOW, dry_run=True)
        assert result.dry_run and len(result.evicted) == 1
        assert pruner.load(signatures[1]) is not None

    def test_prune_skips_files_changed_since_observed(
        self, tmp_path, monkeypatch
    ):
        """The cross-process guard: a victim whose data file changed
        between the pass's observation and its deletion attempt (a
        concurrent writer's merge-save landed) is left alone — checked
        against the file's own recorded mtime/size, not wall clocks."""
        __, signatures = _aged_store(tmp_path, [5.0])
        pruner = CacheStore(tmp_path)
        observed = pruner._reconciled_files()
        # The concurrent merge-save lands "after" the observation:
        writer = CacheStore(tmp_path)
        state = WorkloadState(signature=repr(signatures[0]))
        state.plans["ctx"] = [((31337,), None, None)]
        writer.save(signatures[0], state)
        monkeypatch.setattr(
            CacheStore, "_reconciled_files", lambda self: dict(observed)
        )
        result = pruner.prune(max_store_bytes=0, now=NOW)
        assert result.evicted == ()
        merged = writer.load(signatures[0])
        assert (31337,) in {entry[0] for entry in merged.plans["ctx"]}

    def test_prune_does_not_report_vanished_victims_as_evicted(
        self, tmp_path, monkeypatch
    ):
        """A victim another pruner already deleted is neither counted
        nor listed as this pass's eviction (no double-reporting across
        concurrent prunes) — and not as a survivor either."""
        store, signatures = _aged_store(tmp_path, [5.0])
        pruner = CacheStore(tmp_path)
        observed = pruner._reconciled_files()
        store._path(signatures[0]).unlink()  # the racing pruner won
        monkeypatch.setattr(
            CacheStore, "_reconciled_files", lambda self: dict(observed)
        )
        result = pruner.prune(max_store_bytes=0, now=NOW)
        assert result.evicted == ()
        assert result.files_kept == 0
        assert pruner.counters()["evictions"] == 0

    def test_pruned_signature_repopulates_on_next_save(self, tmp_path):
        __, signatures = _aged_store(tmp_path, [5.0])
        pruner = CacheStore(tmp_path)
        pruner.prune(max_age_days=1.0, now=NOW)
        assert pruner.load(signatures[0]) is None
        fresh = WorkloadState(signature=repr(signatures[0]))
        fresh.plans["ctx"] = [((4096,), None, None)]
        pruner.save(signatures[0], fresh)
        restored = pruner.load(signatures[0])
        assert [e[0] for e in restored.plans["ctx"]] == [(4096,)]

    def test_prune_counts_evictions(self, tmp_path):
        _aged_store(tmp_path, [5.0, 6.0])
        pruner = CacheStore(tmp_path)
        pruner.prune(max_age_days=1.0, now=NOW)
        assert pruner.counters()["evictions"] == 2
        assert pruner.stats().files == 0


ages_strategy = st.lists(
    st.floats(min_value=0.0, max_value=60.0, allow_nan=False),
    min_size=1,
    max_size=8,
)


class TestEvictionProperties:
    """Hypothesis properties of the eviction policy.

    Explicit ``@example`` seeds pin the shrunk counter-example shapes
    these properties were built against (boundary age exactly at the
    cap, one file, all-equal ages), so regressions reproduce without a
    Hypothesis database.
    """

    @given(ages=ages_strategy, cap_days=st.floats(min_value=0.5, max_value=30.0))
    @example(ages=[2.0], cap_days=2.0)
    @example(ages=[0.0, 30.0], cap_days=1.0)
    @settings(max_examples=30, deadline=None)
    def test_prune_never_evicts_newer_than_the_age_cap(
        self, tmp_path_factory, ages, cap_days
    ):
        root = tmp_path_factory.mktemp("store")
        __, signatures = _aged_store(root, ages)
        pruner = CacheStore(root)
        result = pruner.prune(max_age_days=cap_days, now=NOW)
        evicted = set(result.evicted)
        for signature, age in zip(signatures, ages):
            name = pruner._path(signature).name
            if age * 86400.0 < cap_days * 86400.0:
                assert name not in evicted
            if name not in evicted:
                assert pruner.load(signature) is not None

    @given(ages=ages_strategy, cap=st.integers(min_value=0, max_value=4096))
    @example(ages=[0.0], cap=0)
    @example(ages=[1.0, 1.0, 1.0], cap=500)
    @settings(max_examples=30, deadline=None)
    def test_bytes_after_prune_fit_the_cap_and_lru_order_holds(
        self, tmp_path_factory, ages, cap
    ):
        root = tmp_path_factory.mktemp("store")
        __, signatures = _aged_store(root, ages)
        pruner = CacheStore(root)
        result = pruner.prune(max_store_bytes=cap, now=NOW)
        remaining = sum(
            p.stat().st_size for p in root.glob("workload-*.json")
        )
        assert remaining <= cap or not result.evicted
        assert remaining == result.bytes_kept
        # LRU order: nothing evicted may be fresher than a survivor.
        by_name = {
            pruner._path(signature).name: NOW - age * 86400.0
            for signature, age in zip(signatures, ages)
        }
        evicted = set(result.evicted)
        kept = set(by_name) - evicted
        if evicted and kept:
            assert max(by_name[n] for n in evicted) <= min(
                by_name[n] for n in kept
            )

    @given(
        ages=ages_strategy,
        cap=st.integers(min_value=0, max_value=4096),
        cap_days=st.floats(min_value=0.5, max_value=30.0),
    )
    @example(ages=[0.0, 10.0], cap=0, cap_days=1.0)
    @settings(max_examples=30, deadline=None)
    def test_prune_is_idempotent(self, tmp_path_factory, ages, cap, cap_days):
        root = tmp_path_factory.mktemp("store")
        _aged_store(root, ages)
        pruner = CacheStore(root)
        first = pruner.prune(
            max_store_bytes=cap, max_age_days=cap_days, now=NOW
        )
        second = pruner.prune(
            max_store_bytes=cap, max_age_days=cap_days, now=NOW
        )
        assert second.evicted == ()
        assert second.files_kept == first.files_kept
        assert second.bytes_kept == first.bytes_kept


# ---------------------------------------------------------------------------
# Concurrency stress: N writer processes hammer one store directory
# with interleaved merge-saves and loads while a pruner process runs
# concurrent prunes.  Module-level helpers so they fork/pickle cleanly.
# ---------------------------------------------------------------------------

STRESS_SIGNATURES = [("stress", index) for index in range(3)]
STRESS_WRITERS = 4
STRESS_ITERATIONS = 24


def _stress_entry(writer_id: int, iteration: int) -> tuple[int]:
    """A shape unique per (writer, iteration): lost-update detector."""
    return (writer_id * 1_000_000 + iteration,)


def _stress_writer(root, writer_id: int) -> None:
    store = CacheStore(root)
    for iteration in range(STRESS_ITERATIONS):
        signature = STRESS_SIGNATURES[iteration % len(STRESS_SIGNATURES)]
        state = WorkloadState(signature=repr(signature))
        state.plans["ctx"] = [
            (_stress_entry(writer_id, iteration), None, None)
        ]
        store.save(signature, state)
        loaded = store.load(signature)
        # Every mid-stream load must be bit-identical-or-cold: either
        # a complete state for the right signature or None, never a
        # torn read or a crash.
        if loaded is not None:
            assert loaded.signature == repr(signature)
            assert all(
                plan is None and predicted is None
                for entries in loaded.plans.values()
                for (__, plan, predicted) in entries
            )


def _stress_pruner(root, iterations: int, max_store_bytes, max_age_days):
    pruner = CacheStore(root)
    for __ in range(iterations):
        pruner.prune(
            max_store_bytes=max_store_bytes, max_age_days=max_age_days
        )


def _run_stress(root, max_store_bytes, max_age_days) -> None:
    context = multiprocessing.get_context("fork")
    writers = [
        context.Process(target=_stress_writer, args=(root, writer_id))
        for writer_id in range(STRESS_WRITERS)
    ]
    # Two pruners so prune-vs-prune races (victims vanishing under a
    # competing pass) are exercised alongside prune-vs-save ones.
    pruners = [
        context.Process(
            target=_stress_pruner,
            args=(root, 20, max_store_bytes, max_age_days),
        )
        for __ in range(2)
    ]
    for process in writers + pruners:
        process.start()
    for process in writers + pruners:
        process.join(timeout=120)
        assert process.exitcode == 0, f"stress process died: {process}"


class TestConcurrencyStress:
    def test_concurrent_saves_and_nonevicting_prunes_lose_nothing(
        self, tmp_path
    ):
        """4 writer processes + a concurrent pruner whose caps justify
        no eviction (everything is fresh): every entry every writer
        ever merged must be present and intact at the end."""
        _run_stress(tmp_path, max_store_bytes=None, max_age_days=1.0)
        verifier = CacheStore(tmp_path)
        for index, signature in enumerate(STRESS_SIGNATURES):
            loaded = verifier.load(signature)
            assert loaded is not None, f"signature {index} lost entirely"
            shapes = {entry[0] for entry in loaded.plans["ctx"]}
            expected = {
                _stress_entry(writer_id, iteration)
                for writer_id in range(STRESS_WRITERS)
                for iteration in range(STRESS_ITERATIONS)
                if iteration % len(STRESS_SIGNATURES) == index
            }
            assert shapes == expected

    def test_concurrent_saves_and_aggressive_prunes_never_corrupt(
        self, tmp_path
    ):
        """With a zero byte cap the pruner evicts continuously under
        the writers; entries may legitimately vanish (cold on next
        miss) but every surviving file must be complete JSON and every
        load bit-identical-or-cold."""
        _run_stress(tmp_path, max_store_bytes=0, max_age_days=None)
        verifier = CacheStore(tmp_path)
        for path in tmp_path.glob("workload-*.json"):
            json.loads(path.read_text())  # complete, never torn
        for signature in STRESS_SIGNATURES:
            loaded = verifier.load(signature)
            assert loaded is None or loaded.signature == repr(signature)
        # The store stays usable: the next save repopulates cleanly.
        state = WorkloadState(signature=repr(STRESS_SIGNATURES[0]))
        state.plans["ctx"] = [((7,), None, None)]
        verifier.save(STRESS_SIGNATURES[0], state)
        assert verifier.load(STRESS_SIGNATURES[0]) is not None


# ---------------------------------------------------------------------------
# Corruption fuzzing: damaged data files AND damaged manifests always
# load cold and are rewritten cleanly by the next spill / prune.
# ---------------------------------------------------------------------------

#: Byte-level damage applied to store files in the fuzz tests.
CORRUPTIONS = {
    "garbage": lambda text: b"\x00\xff\xfenot json at all",
    "empty": lambda text: b"",
    "half": lambda text: text.encode()[: len(text) // 2],
    "open_brace": lambda text: b"{",
    "json_array": lambda text: b"[1, 2, 3]",
    "wrong_types": lambda text: b'{"version": 1, "files": 42, "plans": "x"}',
    "wrong_version": lambda text: json.dumps(
        {**json.loads(text), "version": STORE_VERSION + 7}
    ).encode(),
}


class TestCorruptionFuzz:
    def _populate(self, root) -> CacheStore:
        store = CacheStore(root)
        for index, signature in enumerate(STRESS_SIGNATURES):
            state = WorkloadState(signature=repr(signature), static_degree=4)
            state.plans["ctx"] = [((128 * (index + 1),), None, None)]
            store.save(signature, state)
        return store

    @pytest.mark.parametrize("corruption", sorted(CORRUPTIONS))
    def test_corrupt_data_file_loads_cold_and_respills_cleanly(
        self, tmp_path, corruption
    ):
        store = self._populate(tmp_path)
        victim = store._path(STRESS_SIGNATURES[0])
        victim.write_bytes(CORRUPTIONS[corruption](victim.read_text()))
        fresh = CacheStore(tmp_path)
        assert fresh.load(STRESS_SIGNATURES[0]) is None  # cold, not fatal
        assert fresh.load(STRESS_SIGNATURES[1]) is not None  # others intact
        state = WorkloadState(signature=repr(STRESS_SIGNATURES[0]))
        state.plans["ctx"] = [((999,), None, None)]
        fresh.save(STRESS_SIGNATURES[0], state)  # rewrite must not raise
        restored = fresh.load(STRESS_SIGNATURES[0])
        assert [e[0] for e in restored.plans["ctx"]] == [(999,)]
        json.loads(victim.read_text())  # clean JSON again

    @pytest.mark.parametrize("corruption", sorted(CORRUPTIONS))
    def test_corrupt_manifest_never_breaks_loads_saves_or_prunes(
        self, tmp_path, corruption
    ):
        store = self._populate(tmp_path)
        manifest = tmp_path / MANIFEST_NAME
        manifest.write_bytes(CORRUPTIONS[corruption](manifest.read_text()))
        fresh = CacheStore(tmp_path)
        assert fresh.load(STRESS_SIGNATURES[0]) is not None  # data unaffected
        # stats/prune reconcile from the directory scan instead.
        assert fresh.stats().files == len(STRESS_SIGNATURES)
        result = fresh.prune(max_age_days=1.0, now=time.time())
        assert result.evicted == ()  # everything fresh (mtime fallback)
        fresh.save(
            STRESS_SIGNATURES[0],
            WorkloadState(signature=repr(STRESS_SIGNATURES[0])),
        )
        # The next spill rewrote a valid manifest.
        files = json.loads(manifest.read_text())["files"]
        assert fresh._path(STRESS_SIGNATURES[0]).name in files

    def test_corrupt_file_is_prunable(self, tmp_path):
        """A damaged workload file is still subject to eviction — with
        its manifest accounting gone too, everything falls back to a
        zero entry count and mtime age."""
        store = self._populate(tmp_path)
        victim = store._path(STRESS_SIGNATURES[0])
        victim.write_bytes(b"\x00broken")
        old = NOW - 10 * 86400.0
        os.utime(victim, (old, old))
        (tmp_path / MANIFEST_NAME).unlink()
        pruner = CacheStore(tmp_path)
        result = pruner.prune(max_age_days=1.0, now=NOW)
        assert victim.name in result.evicted
        assert not victim.exists()
