"""Tests for repro.core.cache_store: the persistent cross-process store.

The store's contract is exact restoration: a process that loads
spilled state must behave bit-identically to the process that spilled
it — same cost model, same plans, same
:class:`~repro.core.types.SolveStats` counters on subsequent solves —
and any corrupted, truncated or foreign file must read as *cold*,
never as an error.
"""

from __future__ import annotations

import dataclasses
import json

import hypothesis.strategies as st
import pytest
from hypothesis import given, settings

from repro.core.cache_store import (
    STORE_VERSION,
    CacheStore,
    WorkloadState,
    context_digest,
    entries_from_cache,
    preload_cache,
    signature_digest,
)
from repro.core.plan_cache import PlanCache, cache_context
from repro.core.solver import FlexSPSolver, SolverConfig
from repro.cost.model import CostModel

SIGNATURE = ("gpt-7b", "github", 32 * 1024, 8)
OTHER_SIGNATURE = ("gpt-7b", "wikipedia", 32 * 1024, 8)

lengths_strategy = st.lists(
    st.integers(min_value=64, max_value=24_000), min_size=1, max_size=32
)


def greedy_solver(model) -> FlexSPSolver:
    return FlexSPSolver(model, SolverConfig(num_trials=3, backend="greedy"))


def spill(store: CacheStore, solver: FlexSPSolver, signature) -> None:
    state = WorkloadState(signature=repr(signature))
    state.coeffs = solver.model.coeffs
    state.comm_model = solver.model.comm_model
    digest = context_digest(solver.config.planner, solver.config.backend)
    state.plans[digest] = entries_from_cache(solver.cache)
    store.save(signature, state)


def restore(store: CacheStore, model, signature) -> FlexSPSolver:
    solver = greedy_solver(model)
    state = store.load(signature)
    assert state is not None
    digest = context_digest(solver.config.planner, solver.config.backend)
    context = cache_context(
        solver.model, solver.config.planner, solver.config.backend
    )
    preload_cache(solver.cache, state.plans[digest], context)
    return solver


def stats_counters(plan):
    """SolveStats minus the wall-clock field (host-dependent)."""
    assert plan.stats is not None
    return (
        plan.stats.cache_hits,
        plan.stats.dedup_hits,
        plan.stats.cache_misses,
        plan.stats.trials,
        plan.stats.microbatches,
    )


class TestRoundTripProperties:
    @given(lengths=lengths_strategy)
    @settings(max_examples=25, deadline=None)
    def test_restored_cache_solves_bit_identically(
        self, cost_model8, tmp_path_factory, lengths
    ):
        """spill -> restore -> solve must equal the warm original: same
        plans, same predicted times, same SolveStats counters."""
        store = CacheStore(tmp_path_factory.mktemp("store"))
        original = greedy_solver(cost_model8)
        original.solve(tuple(lengths))
        spill(store, original, SIGNATURE)

        restored = restore(store, cost_model8, SIGNATURE)
        warm = original.solve(tuple(lengths))
        fresh = restored.solve(tuple(lengths))
        assert fresh.microbatches == warm.microbatches
        assert fresh.predicted_time == warm.predicted_time
        assert stats_counters(fresh) == stats_counters(warm)
        assert fresh.stats.planner_calls == 0

    @given(lengths=lengths_strategy)
    @settings(max_examples=25, deadline=None)
    def test_restored_coeffs_are_bit_identical(
        self, cost_model8, tmp_path_factory, lengths
    ):
        """Cost-model fits survive the JSON round trip exactly."""
        store = CacheStore(tmp_path_factory.mktemp("store"))
        solver = greedy_solver(cost_model8)
        solver.solve(tuple(lengths))
        spill(store, solver, SIGNATURE)
        state = store.load(SIGNATURE)
        assert state.coeffs == cost_model8.coeffs
        restored_model = CostModel(
            coeffs=state.coeffs,
            cluster=cost_model8.cluster,
            comm_model=state.comm_model,
        )
        assert restored_model == CostModel(
            coeffs=cost_model8.coeffs,
            cluster=cost_model8.cluster,
            comm_model=cost_model8.comm_model,
        )

    def test_infeasible_entries_round_trip(self, cost_model8, tmp_path):
        """Shapes proven unplannable stay unplannable after restore."""
        store = CacheStore(tmp_path)
        cache = PlanCache()
        context = cache_context(
            cost_model8, SolverConfig().planner, "greedy"
        )
        cache.store(((10**9,), context), None, None)  # infeasible marker
        state = WorkloadState(signature=repr(SIGNATURE))
        state.plans["ctx"] = entries_from_cache(cache)
        store.save(SIGNATURE, state)
        restored = store.load(SIGNATURE)
        (shape, plan, predicted) = restored.plans["ctx"][0]
        assert shape == (10**9,)
        assert plan is None and predicted is None


class TestCorruptionIsIgnored:
    def _path(self, store: CacheStore):
        return store.root / f"workload-{signature_digest(SIGNATURE)}.json"

    def test_missing_file_loads_cold(self, tmp_path):
        assert CacheStore(tmp_path).load(SIGNATURE) is None

    def test_garbage_bytes_load_cold(self, tmp_path):
        store = CacheStore(tmp_path)
        self._path(store).write_bytes(b"\x00\xffnot json at all")
        assert store.load(SIGNATURE) is None

    def test_truncated_json_loads_cold(self, tmp_path, cost_model8):
        store = CacheStore(tmp_path)
        solver = greedy_solver(cost_model8)
        solver.solve((4096, 2048, 1024))
        spill(store, solver, SIGNATURE)
        text = self._path(store).read_text()
        self._path(store).write_text(text[: len(text) // 2])
        assert store.load(SIGNATURE) is None

    def test_wrong_version_loads_cold(self, tmp_path):
        store = CacheStore(tmp_path)
        store.save(SIGNATURE, WorkloadState(signature=repr(SIGNATURE)))
        payload = json.loads(self._path(store).read_text())
        payload["version"] = STORE_VERSION + 1
        self._path(store).write_text(json.dumps(payload))
        assert store.load(SIGNATURE) is None

    def test_signature_mismatch_loads_cold(self, tmp_path):
        """A digest collision (or stale schema) must read as cold."""
        store = CacheStore(tmp_path)
        store.save(
            OTHER_SIGNATURE, WorkloadState(signature=repr(OTHER_SIGNATURE))
        )
        foreign = store.root / (
            f"workload-{signature_digest(OTHER_SIGNATURE)}.json"
        )
        foreign.rename(self._path(store))
        assert store.load(SIGNATURE) is None

    def test_save_recovers_after_corruption(self, tmp_path, cost_model8):
        store = CacheStore(tmp_path)
        self._path(store).write_text("{broken")
        solver = greedy_solver(cost_model8)
        solver.solve((8192, 4096))
        spill(store, solver, SIGNATURE)  # must not raise
        assert store.load(SIGNATURE) is not None


class TestMergeAndKeys:
    def test_save_merges_plan_entries(self, tmp_path):
        store = CacheStore(tmp_path)
        first = WorkloadState(signature=repr(SIGNATURE), static_degree=8)
        first.plans["ctx"] = [((1024,), None, None)]
        store.save(SIGNATURE, first)
        second = WorkloadState(signature=repr(SIGNATURE))
        second.plans["ctx"] = [((2048,), None, None)]
        second.megatron_strategy = (2, 2, 2)
        store.save(SIGNATURE, second)
        merged = store.load(SIGNATURE)
        assert {e[0] for e in merged.plans["ctx"]} == {(1024,), (2048,)}
        # Scalars survive merging: the degree from the first spill, the
        # strategy from the second.
        assert merged.static_degree == 8
        assert merged.megatron_strategy == (2, 2, 2)

    def test_save_rejects_mismatched_signature(self, tmp_path):
        with pytest.raises(ValueError, match="signature"):
            CacheStore(tmp_path).save(
                SIGNATURE, WorkloadState(signature=repr(OTHER_SIGNATURE))
            )

    def test_digests_are_deterministic_and_distinct(self):
        assert signature_digest(SIGNATURE) == signature_digest(SIGNATURE)
        assert signature_digest(SIGNATURE) != signature_digest(OTHER_SIGNATURE)
        config = SolverConfig()
        assert context_digest(config.planner, "milp") != context_digest(
            config.planner, "greedy"
        )
        ablated = dataclasses.replace(config.planner, bucketing="naive")
        assert context_digest(config.planner, "milp") != context_digest(
            ablated, "milp"
        )

    def test_signatures_listing(self, tmp_path):
        store = CacheStore(tmp_path)
        assert store.signatures() == []
        store.save(SIGNATURE, WorkloadState(signature=repr(SIGNATURE)))
        assert store.signatures() == [signature_digest(SIGNATURE)]
