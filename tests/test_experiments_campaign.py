"""Tests for repro.experiments.campaign: the declarative campaign engine.

The engine's contract: every paper artefact grid is a declarative cell
list executed through *one* sweep pass, overlapping cells dedup to one
measurement, and every campaign path (variant cells, store-restored
runs, shared solver pool, deterministic MILP cells) reproduces the
pre-refactor registry/benchmark computations bit-for-bit.
"""

from __future__ import annotations

import dataclasses
import json

import pytest

from repro.baselines.homogeneous import homogeneous_plan
from repro.cluster.topology import standard_cluster
from repro.core.planner import PlannerConfig
from repro.core.solver import SolverConfig
from repro.data.distributions import COMMONCRAWL, FixedLength
from repro.experiments.campaign import (
    ABLATIONS,
    Artefact,
    Campaign,
    build_campaign,
    fig4_artefact,
    fig6_artefact,
    fig7_artefact,
    fig8_artefact,
    smoke_campaign,
    table1_artefact,
)
from repro.experiments.registry import artefact_grid
from repro.experiments.runner import run_system
from repro.experiments.sweep import SweepCell, SweepRunner
from repro.experiments.systems import FlexSPSystem
from repro.experiments.workloads import Workload
from repro.model.config import GPT_7B
from repro.simulator.executor import IterationExecutor

SOLVER = SolverConfig(backend="greedy", num_trials=2)
NUM_GPUS = 8
BATCH = 16
CONTEXT = 32 * 1024


def small_runner(**kwargs) -> SweepRunner:
    return SweepRunner(solver_config=SOLVER, workers=1, **kwargs)


@pytest.fixture(scope="module")
def campaign() -> Campaign:
    return smoke_campaign(global_batch_size=BATCH, num_gpus=NUM_GPUS)


@pytest.fixture(scope="module")
def result(campaign):
    return campaign.run(small_runner())


class TestArtefactBuilders:
    def test_five_artefacts_cover_the_paper_grids(self, campaign):
        assert [a.key for a in campaign.artefacts] == [
            "fig4",
            "fig6",
            "table1",
            "fig7",
            "fig8",
        ]

    def test_fig4_grid_is_systems_by_corpora(self):
        artefact = fig4_artefact(
            global_batch_size=BATCH, num_gpus=NUM_GPUS, contexts=(CONTEXT,)
        )
        assert len(artefact.cells) == 4 * 3  # systems x corpora
        assert {c.system for c in artefact.cells} == {
            "flexsp",
            "deepspeed",
            "batchada",
            "megatron",
        }

    def test_table1_cells_pin_degrees_via_variants(self):
        artefact = table1_artefact(
            rows=((4 * 1024, 16),),
            degrees=(8, 4),
            num_gpus=NUM_GPUS,
            max_context=CONTEXT,
        )
        assert [dict(c.variant)["sp_degree"] for c in artefact.cells] == [8, 4]
        assert all(c.system == "deepspeed" for c in artefact.cells)
        assert all(
            isinstance(c.workload.distribution, FixedLength)
            for c in artefact.cells
        )

    def test_fig7_cells_are_ablation_variants(self):
        artefact = fig7_artefact(
            global_batch_size=BATCH, num_gpus=NUM_GPUS, contexts=(CONTEXT,)
        )
        assert [c.variant for c in artefact.cells] == [
            variant for __, variant in ABLATIONS
        ]

    def test_empty_artefact_rejected(self):
        with pytest.raises(ValueError, match="no cells"):
            Artefact(key="x", title="x", cells=())

    def test_duplicate_artefact_keys_rejected(self):
        artefact = fig8_artefact(gpu_counts=(NUM_GPUS,), max_context=CONTEXT)
        with pytest.raises(ValueError, match="duplicate"):
            Campaign(name="bad", artefacts=(artefact, artefact))

    def test_unknown_campaign_name(self):
        with pytest.raises(KeyError, match="unknown campaign"):
            build_campaign("nope")

    def test_registry_is_a_thin_adapter(self):
        artefact = artefact_grid(
            "table1",
            rows=((4 * 1024, 8),),
            degrees=(4,),
            num_gpus=NUM_GPUS,
            max_context=CONTEXT,
        )
        assert artefact.key == "table1"
        assert len(artefact.cells) == 1
        with pytest.raises(ValueError, match="not an evaluation grid"):
            artefact_grid("fig2")


class TestDedupAcrossArtefacts:
    def test_overlapping_cells_measured_exactly_once(self, campaign, result):
        cells = campaign.cells
        assert len(cells) > len(set(cells))  # the grids really overlap
        assert result.sweep.unique_cells == len(set(cells))

    def test_shared_cells_share_one_metrics_object(self, result):
        """Fig. 7's un-ablated column, Fig. 8's full-cluster point and
        Fig. 6's largest-context point are all the same Fig. 4 cells —
        dedup must fan out the *same* measurement, not re-measure."""
        fig4 = result.artefact("fig4")
        workload_name = f"gpt-7b/commoncrawl/32K/{NUM_GPUS}gpu"
        flexsp = fig4.metric("flexsp", workload_name)
        assert result.artefact("fig7").metric("flexsp", workload_name) is flexsp
        assert result.artefact("fig8").metric("flexsp", workload_name) is flexsp
        assert result.artefact("fig6").metric("flexsp", workload_name) is flexsp

    def test_summary_counts(self, campaign, result):
        summary = result.summary()
        assert summary["cells"] == len(campaign.cells)
        assert summary["unique_cells"] == len(set(campaign.cells))
        assert set(summary["artefacts"]) == {
            "fig4",
            "fig6",
            "table1",
            "fig7",
            "fig8",
        }

    def test_summary_carries_stage_breakdown_and_prewarm(self, result):
        """The trajectory record surfaces the cold-path engine: the
        per-stage SolveStats totals and the cold-batching pass."""
        summary = result.summary()
        stages = summary["stage_seconds"]
        assert set(stages) >= {"lpt"}
        assert all(seconds >= 0.0 for seconds in stages.values())
        # This campaign runs serially with prewarming on, so its
        # FlexSP planning happened in the batched cold pass.
        assert summary["prewarm"]["planned_shapes"] > 0
        assert summary["prewarm"]["seconds"] > 0.0
        assert stages["lpt"] > 0.0


class TestBitIdenticalToPreRefactorPaths:
    """Campaign cells must reproduce the ad-hoc registry/benchmark
    computations they replaced, bit for bit."""

    @pytest.fixture(scope="class")
    def workload(self):
        return Workload(
            model=GPT_7B,
            distribution=COMMONCRAWL,
            max_context=CONTEXT,
            cluster=standard_cluster(NUM_GPUS),
            global_batch_size=BATCH,
        )

    def test_table1_cell_matches_homogeneous_executor_path(self):
        """The Table 1 campaign cell == the pre-refactor bench loop:
        fit model, homogeneous_plan at a pinned degree, executor."""
        from repro.cost.profiler import fit_cost_model

        seq, bs, degree = 8 * 1024, 8, 4
        artefact = table1_artefact(
            rows=((seq, bs),),
            degrees=(degree,),
            num_gpus=NUM_GPUS,
            max_context=64 * 1024,
        )
        result = small_runner().run(artefact.cells)
        metrics = result.metrics[0]

        # Pre-refactor path (benchmarks/test_bench_table1.py's _cell):
        # one fit, fixed-length batch, homogeneous plan, executor — at
        # the same checkpointing policy the workload selects (64K on
        # one node escalates; the paper's 64-GPU protocol does not).
        workload = artefact.cells[0].workload
        cluster = standard_cluster(NUM_GPUS)
        config = GPT_7B.with_max_context(64 * 1024)
        model = fit_cost_model(config, cluster, workload.checkpointing)
        executor = IterationExecutor(
            config=config, cluster=cluster, checkpointing=workload.checkpointing
        )
        plan = homogeneous_plan((seq,) * bs, model, degree)
        reference = executor.run(plan)
        assert metrics.status == "ok"
        assert metrics.mean_iteration_seconds == reference.iteration_seconds
        assert (
            metrics.mean_alltoall_fraction
            == reference.trace.alltoall_seconds() / reference.iteration_seconds
        )

    def test_table1_oom_corner_matches_fits_check(self, cost_model8):
        """A degree the memory model rejects surfaces as an OOM cell."""
        seq, degree = 64 * 1024, 1
        assert not cost_model8.fits([seq], degree)
        artefact = table1_artefact(
            rows=((seq, 4),),
            degrees=(degree,),
            num_gpus=NUM_GPUS,
            max_context=64 * 1024,
        )
        result = small_runner().run(artefact.cells)
        assert result.metrics[0].status == "oom"
        assert not result.metrics[0].feasible
        assert result.metrics[0].deterministic() == (0.0, 0.0, 0.0, 0.0)

    def test_fig7_ablation_cell_matches_ablated_system(self, workload):
        """A bucketing-ablation variant == the pre-refactor bench path
        (FlexSPSystem with a hand-ablated solver)."""
        cell = SweepCell(
            system="flexsp",
            workload=workload,
            num_iterations=2,
            variant=(("bucketing", "naive"),),
        )
        result = small_runner().run([cell])

        system = FlexSPSystem(workload, SOLVER)
        system.solver = system.solver.ablated(
            planner=dataclasses.replace(SOLVER.planner, bucketing="naive")
        )
        reference = run_system(system, workload, 2)
        assert result.metrics[0].deterministic() == (
            reference.mean_iteration_seconds,
            reference.mean_comm_fraction,
            reference.mean_alltoall_fraction,
            reference.tokens_per_second_per_gpu(NUM_GPUS),
        )

    def test_bad_variant_values_raise_instead_of_fabricating_oom(
        self, workload
    ):
        """A typo'd variant value must fail at cell construction, not
        be swallowed downstream and rendered as a fake OOM corner."""
        with pytest.raises(ValueError, match="bucketing"):
            SweepCell(
                system="flexsp",
                workload=workload,
                variant=(("bucketing", "nave"),),
            )
        with pytest.raises(ValueError, match="power of two"):
            SweepCell(
                system="deepspeed",
                workload=workload,
                variant=(("sp_degree", 0),),
            )
        with pytest.raises(ValueError, match="bool"):
            SweepCell(
                system="flexsp",
                workload=workload,
                variant=(("sort_sequences", "no"),),
            )

    def test_variant_order_does_not_split_cells(self, workload):
        a = SweepCell(
            system="flexsp",
            workload=workload,
            variant=(("sort_sequences", False), ("bucketing", "naive")),
        )
        b = SweepCell(
            system="flexsp",
            workload=workload,
            variant=(("bucketing", "naive"), ("sort_sequences", False)),
        )
        assert a == b

    def test_checkpointing_policy_surfaces_in_metrics(self, result):
        """The satellite contract: every cell annotates the chosen
        activation-checkpointing policy for figure regeneration."""
        for cell, metrics in zip(result.sweep.cells, result.sweep.metrics):
            assert metrics.checkpointing == cell.workload.checkpointing.value
        assert {m.checkpointing for m in result.sweep.metrics} <= {
            "none",
            "selective",
            "full",
        }


class TestMilpDeterminism:
    def test_node_limited_milp_cells_are_bit_identical(self):
        """With a deterministic work limit instead of a wall-clock
        budget, MILP cells repeat bit-identically across fresh
        processes' worth of state (fresh runners = fresh solvers)."""
        workload = Workload(
            model=GPT_7B,
            distribution=COMMONCRAWL,
            max_context=16 * 1024,
            cluster=standard_cluster(NUM_GPUS),
            global_batch_size=8,
        )
        config = SolverConfig(
            backend="milp",
            num_trials=2,
            planner=PlannerConfig(node_limit=50, mip_rel_gap=0.05),
        )
        cell = SweepCell(system="flexsp", workload=workload, num_iterations=2)
        first = SweepRunner([cell], solver_config=config, workers=1).run()
        second = SweepRunner([cell], solver_config=config, workers=1).run()
        assert (
            first.metrics[0].deterministic()
            == second.metrics[0].deterministic()
        )


class TestCampaignWithStoreAndPool:
    def test_store_restored_campaign_is_bit_identical_and_warm(
        self, campaign, result, tmp_path
    ):
        cold = campaign.run(small_runner(store=tmp_path))
        for a, b in zip(result.sweep.metrics, cold.sweep.metrics):
            assert a.deterministic() == b.deterministic()
        # A fresh runner (fresh process's worth of state) restores
        # everything: identical metrics, fully warm plan caches.
        warm = campaign.run(small_runner(store=tmp_path))
        for a, b in zip(cold.sweep.metrics, warm.sweep.metrics):
            assert a.deterministic() == b.deterministic()
        assert warm.plan_cache_hit_rate == 1.0

    def test_shared_solver_pool_is_bit_identical(self, campaign, result):
        with small_runner(solver_workers=2) as runner:
            pooled = campaign.run(runner)
            assert runner._solver_pool is not None
        for a, b in zip(result.sweep.metrics, pooled.sweep.metrics):
            assert a.deterministic() == b.deterministic()

    def test_corrupted_store_never_crashes_a_campaign(
        self, campaign, result, tmp_path
    ):
        """Corruption fuzz at campaign level: with every store file
        and the manifest damaged (truncated / garbage / partial JSON),
        the campaign runs cold-on-miss with bit-identical metrics and
        leaves the store cleanly rewritten."""
        campaign.run(small_runner(store=tmp_path))
        damage = [
            lambda text: text.encode()[: len(text) // 2],  # truncated
            lambda text: b"\x00\xffgarbage",
            lambda text: b'{"version": 1, "plans": ',  # partial JSON
        ]
        for index, path in enumerate(sorted(tmp_path.glob("*.json"))):
            path.write_bytes(damage[index % len(damage)](path.read_text()))
        recovered = campaign.run(small_runner(store=tmp_path))
        for a, b in zip(result.sweep.metrics, recovered.sweep.metrics):
            assert a.deterministic() == b.deterministic()
        # Every load was cold (nothing restorable survived the damage)
        # and the pass respilled a fully valid store.
        assert recovered.sweep.store_stats.hits == 0
        assert recovered.sweep.store_stats.writes > 0
        for path in tmp_path.glob("*.json"):
            json.loads(path.read_text())

    def test_store_write_amplification_below_per_cell_baseline(
        self, campaign, tmp_path
    ):
        """The campaign summary carries the write-amplification figure
        and the default drain cadence beats spill-per-cell."""
        per_cell = campaign.run(
            small_runner(store=tmp_path / "per_cell", spill_batch=1)
        )
        batched = campaign.run(small_runner(store=tmp_path / "batched"))
        assert (
            batched.sweep.store_stats.writes
            < per_cell.sweep.store_stats.writes
        )
        assert (
            batched.store_write_amplification
            < per_cell.store_write_amplification
        )
        summary = batched.summary()
        assert summary["store"]["writes"] == batched.sweep.store_stats.writes
        assert summary["store"]["write_amplification"] == round(
            batched.store_write_amplification, 4
        )


class TestCampaignCli:
    def test_repeat_must_be_positive(self):
        from repro.bench import main

        with pytest.raises(SystemExit):
            main(["--campaign", "smoke", "--no-store", "--repeat", "0"])

    def test_unknown_campaign_name_errors_cleanly(self):
        from repro.bench import main

        with pytest.raises(KeyError, match="unknown campaign"):
            main(["--campaign", "nope", "--no-store"])


class TestPipelineAdapter:
    def test_pipeline_with_shared_pool_matches_plain(self, cost_model8):
        from repro.core.solver import FlexSPSolver, SolverPool
        from repro.data.dataset import SyntheticCorpus
        from repro.experiments.pipeline import TrainingPipeline

        corpus = SyntheticCorpus(
            COMMONCRAWL, max_context=16 * 1024, global_batch_size=8
        )
        executor = IterationExecutor(
            config=GPT_7B.with_max_context(64 * 1024),
            cluster=standard_cluster(NUM_GPUS),
        )
        plain = TrainingPipeline(
            FlexSPSolver(cost_model8, SOLVER), executor, corpus, workers=1
        ).run(2)
        with SolverPool(workers=2) as pool:
            pooled = TrainingPipeline.with_shared_pool(
                cost_model8, SOLVER, executor, corpus, pool, workers=1
            ).run(2)
        # Plans compare without stats: SolveStats carries host
        # wall-clock, which legitimately differs between runs.
        for a, b in zip(pooled.plans, plain.plans):
            assert a.microbatches == b.microbatches
            assert a.predicted_time == b.predicted_time
        assert pooled.iteration_seconds == plain.iteration_seconds
