"""Property tests for the cold-path planning engine (hypothesis).

Four invariants guard the PR-5 cold-path machinery:

* **Dominance pruning is lossless** — for random corpora and
  clusters, planning over the pruned candidate family yields
  bit-identical best layouts and makespans to an exhaustive pass over
  the unpruned :func:`~repro.core.planner_greedy.candidate_layouts`
  family, and every layout pruning drops is genuinely LPT-infeasible.
* **Stacked == scalar** — the stacked multi-layout LPT pass and the
  scalar per-layout loop return identical plans whatever the
  threshold would have chosen.
* **Multi-count blasting == per-count blasting** — the shared-DP
  :func:`~repro.core.blaster.blast_multi` reproduces every
  :func:`~repro.core.blaster.blast` result bit-for-bit.
* **Skeleton assembly == from-scratch assembly** — the cached MILP
  constraint skeleton scatters values into a CSC matrix bit-identical
  to an independent COO assembly of the same instance.
"""

import hypothesis.strategies as st
import numpy as np
import pytest
from hypothesis import given, settings

from repro.core import planner_greedy
from repro.core.blaster import blast, blast_multi
from repro.core.planner import (
    PlanInfeasibleError,
    PlannerConfig,
    _make_buckets,
    _skeleton,
    enumerate_virtual_groups,
)
from repro.core.planner_greedy import (
    _assign_lpt_scalar,
    _layout_stack,
    candidate_layouts,
    plan_microbatch_greedy,
)
from repro.core.types import SequenceBatch
from repro.cost.model import cost_table

lengths_strategy = st.lists(
    st.integers(min_value=16, max_value=24_000), min_size=1, max_size=24
)

#: Quantised corpora exercise the equal-length incremental cache.
quantized_strategy = st.lists(
    st.integers(min_value=1, max_value=40).map(lambda k: k * 512),
    min_size=1,
    max_size=24,
)


def _unpruned_best(lengths, model):
    """Exhaustive reference: scalar LPT over the *whole* family."""
    table = cost_table(model)
    stack = _layout_stack(model, max(lengths))
    ordered = sorted(lengths, reverse=True)
    best = None
    outcomes = []
    for row, layout in enumerate(stack.layouts):
        assigned = _assign_lpt_scalar(
            ordered, stack.lane_constants[row], table
        )
        outcomes.append((layout, assigned))
        if assigned is None:
            continue
        if best is not None and assigned[1] >= best[1]:
            continue
        best = (layout, assigned[1])
    return best, outcomes


class TestDominancePruningLossless:
    @pytest.mark.parametrize("fixture", ["cost_model8", "cost_model16"])
    @given(lengths=lengths_strategy)
    @settings(max_examples=60, deadline=None)
    def test_pruned_family_bit_identical(self, fixture, lengths, request):
        model = request.getfixturevalue(fixture)
        lengths = tuple(lengths)
        if sum(lengths) > model.cluster_token_capacity():
            return
        best, outcomes = _unpruned_best(lengths, model)
        if best is None:
            with pytest.raises(PlanInfeasibleError):
                plan_microbatch_greedy(lengths, model)
            return
        plan, makespan = plan_microbatch_greedy(lengths, model)
        # Bit-identical makespan and winning layout degrees.
        assert makespan == best[1]
        winner_degrees = tuple(
            sorted((g.degree for g in plan.groups), reverse=True)
        )
        nonempty = tuple(
            sorted(
                (
                    d
                    for d, gl in zip(best[0], outcomes_for(best[0], outcomes))
                    if gl
                ),
                reverse=True,
            )
        )
        assert winner_degrees == nonempty

    @pytest.mark.parametrize("fixture", ["cost_model8", "cost_model16"])
    @given(lengths=lengths_strategy)
    @settings(max_examples=60, deadline=None)
    def test_pruned_layouts_are_infeasible(self, fixture, lengths, request):
        """Every layout dominance pruning drops would have returned
        None from LPT — the definition of lossless."""
        model = request.getfixturevalue(fixture)
        lengths = tuple(lengths)
        if sum(lengths) > model.cluster_token_capacity():
            return
        table = cost_table(model)
        stack = _layout_stack(model, max(lengths))
        kept = {
            stack.layouts[int(r)]
            for r in stack.surviving(float(sum(lengths)), float(max(lengths)))
        }
        ordered = sorted(lengths, reverse=True)
        for row, layout in enumerate(stack.layouts):
            if layout in kept:
                continue
            assert (
                _assign_lpt_scalar(ordered, stack.lane_constants[row], table)
                is None
            ), f"pruned layout {layout} was feasible"

    def test_family_matches_public_enumeration(self, cost_model16):
        """The cached stack serves exactly candidate_layouts' family."""
        assert candidate_layouts(cost_model16, 4096) == _layout_stack(
            cost_model16, 4096
        ).layouts


def outcomes_for(layout, outcomes):
    for candidate, assigned in outcomes:
        if candidate == layout:
            return assigned[0]
    raise AssertionError(f"layout {layout} missing from reference outcomes")


class TestStackedEqualsScalar:
    @given(lengths=st.one_of(lengths_strategy, quantized_strategy))
    @settings(max_examples=60, deadline=None)
    def test_paths_identical(self, cost_model16, lengths):
        lengths = tuple(lengths)
        if sum(lengths) > cost_model16.cluster_token_capacity():
            return

        def run():
            try:
                return plan_microbatch_greedy(lengths, cost_model16)
            except PlanInfeasibleError:
                return None

        saved = planner_greedy._VECTOR_THRESHOLD
        try:
            planner_greedy._VECTOR_THRESHOLD = 10**9
            scalar = run()
            planner_greedy._VECTOR_THRESHOLD = 0
            stacked = run()
        finally:
            planner_greedy._VECTOR_THRESHOLD = saved
        if scalar is None:
            assert stacked is None
            return
        assert stacked is not None
        assert scalar[0] == stacked[0]
        assert scalar[1] == stacked[1]


class TestTierIdentity:
    """Compiled tier forced ON == forced OFF, whatever the route.

    On hosts with numba the forced-native leg runs the jitted kernels
    (CI's tier-1 job); without it dispatch degrades to the fallback
    and the property reduces to determinism — the un-jitted kernel
    bodies are separately compared in ``tests/test_core_kernels.py``.
    """

    @given(
        lengths=st.one_of(lengths_strategy, quantized_strategy),
        threshold=st.sampled_from([0, 10**9]),
    )
    @settings(max_examples=40, deadline=None)
    def test_plans_identical_across_tiers(
        self, cost_model16, lengths, threshold
    ):
        from repro.core import kernels

        lengths = tuple(lengths)
        if sum(lengths) > cost_model16.cluster_token_capacity():
            return

        def run():
            try:
                return plan_microbatch_greedy(lengths, cost_model16)
            except PlanInfeasibleError:
                return None

        saved = planner_greedy._VECTOR_THRESHOLD
        try:
            planner_greedy._VECTOR_THRESHOLD = threshold
            with kernels.force("fallback"):
                off = run()
            with kernels.force("native"):
                on = run()
        finally:
            planner_greedy._VECTOR_THRESHOLD = saved
        if off is None:
            assert on is None
            return
        assert on is not None
        assert on[0] == off[0]
        assert on[1] == off[1]

    @given(
        lengths=st.lists(
            st.integers(min_value=1, max_value=50_000), min_size=1, max_size=60
        ),
        num_buckets=st.integers(min_value=1, max_value=20),
    )
    @settings(max_examples=40, deadline=None)
    def test_buckets_and_cuts_identical_across_tiers(
        self, lengths, num_buckets
    ):
        from repro.core import kernels
        from repro.core.blaster import balanced_cut_points_multi
        from repro.core.bucketing import optimal_buckets

        counts = tuple(
            c for c in (1, 2, num_buckets) if c <= len(lengths)
        ) or (1,)
        with kernels.force("fallback"):
            buckets_off = optimal_buckets(lengths, num_buckets)
            cuts_off = balanced_cut_points_multi(sorted(lengths), counts)
        with kernels.force("native"):
            buckets_on = optimal_buckets(lengths, num_buckets)
            cuts_on = balanced_cut_points_multi(sorted(lengths), counts)
        assert buckets_on == buckets_off
        assert cuts_on == cuts_off


class TestMultiBlast:
    @given(
        lengths=st.lists(
            st.integers(min_value=1, max_value=50_000), min_size=1, max_size=40
        ),
        num_counts=st.integers(min_value=1, max_value=6),
        sort=st.booleans(),
    )
    @settings(max_examples=80, deadline=None)
    def test_matches_per_count_blast(self, lengths, num_counts, sort):
        batch = SequenceBatch(lengths=tuple(lengths))
        counts = list(range(1, 1 + num_counts))
        multi = blast_multi(batch, counts, sort=sort)
        for count in counts:
            if count > len(lengths):
                assert count not in multi
                continue
            single = blast(batch, count, sort=sort)
            assert [mb.lengths for mb in single] == [
                mb.lengths for mb in multi[count]
            ]


class TestSkeletonAssembly:
    @given(lengths=lengths_strategy)
    @settings(max_examples=25, deadline=None)
    def test_matrix_bit_identical_to_coo(self, cost_model16, lengths):
        from scipy import sparse

        model = cost_model16
        lengths = tuple(lengths)
        if sum(lengths) > model.cluster_token_capacity():
            return
        config = PlannerConfig()
        try:
            buckets = _make_buckets(lengths, config)
            groups = enumerate_virtual_groups(model, lengths, config)
        except PlanInfeasibleError:
            return
        table = cost_table(model)
        skeleton = _skeleton(
            table, len(buckets), tuple(g.degree for g in groups)
        )
        uppers = np.asarray([b.upper for b in buckets], dtype=np.float64)
        got = skeleton.matrix(table, uppers)

        # Independent COO reference re-derived from the skeleton's own
        # blocks is circular; rebuild the canonical CSC from the raw
        # (rows, cols, vals) triplet instead and let scipy do the
        # duplicate-summing sort the original assembly relied on.
        vals = skeleton.values(table, uppers)
        # Invert the cached permutation to recover emission order.
        inverse = np.empty_like(skeleton.perm)
        inverse[skeleton.perm] = np.arange(skeleton.perm.size)
        coo_rows = skeleton.indices[inverse]
        coo_cols = np.repeat(
            np.arange(skeleton.num_vars),
            np.diff(skeleton.indptr),
        )[inverse]
        reference = sparse.csc_array(
            (vals, (coo_rows, coo_cols)),
            shape=(skeleton.num_rows, skeleton.num_vars),
            dtype=np.float64,
        )
        reference.sum_duplicates()
        reference.sort_indices()
        assert np.array_equal(got.indptr, reference.indptr)
        assert np.array_equal(got.indices, reference.indices)
        assert np.array_equal(got.data, reference.data)
