"""Tests for repro.parallelism.ulysses: All-to-All volume accounting."""

import pytest

from repro.model.config import GPT_7B, GPT_TINY
from repro.parallelism.ulysses import (
    alltoall_bytes_per_gpu,
    alltoall_rounds_per_step,
    sp_step_comm_bytes_per_gpu,
)


class TestPerRoundVolume:
    def test_proportional_to_resident_tokens(self):
        one = alltoall_bytes_per_gpu(GPT_7B, 1000)
        two = alltoall_bytes_per_gpu(GPT_7B, 2000)
        assert two == pytest.approx(2 * one)

    def test_matches_hidden_times_bytes(self):
        assert alltoall_bytes_per_gpu(GPT_7B, 1) == GPT_7B.hidden_size * 2

    def test_rejects_negative(self):
        with pytest.raises(ValueError, match="resident_tokens"):
            alltoall_bytes_per_gpu(GPT_7B, -1)


class TestRounds:
    def test_four_per_layer_per_direction(self):
        assert alltoall_rounds_per_step(GPT_7B) == GPT_7B.num_layers * 4 * 2

    def test_scales_with_depth(self):
        assert alltoall_rounds_per_step(GPT_7B) > alltoall_rounds_per_step(GPT_TINY)


class TestStepVolume:
    def test_volume_independent_of_degree_given_resident_share(self):
        """Per-GPU payload is tokens/P x h: doubling P halves it."""
        v8 = sp_step_comm_bytes_per_gpu(GPT_7B, group_tokens=64_000, sp_degree=8)
        v16 = sp_step_comm_bytes_per_gpu(GPT_7B, group_tokens=64_000, sp_degree=16)
        assert v8 == pytest.approx(2 * v16)

    def test_linear_in_tokens(self):
        v1 = sp_step_comm_bytes_per_gpu(GPT_7B, group_tokens=10_000, sp_degree=8)
        v2 = sp_step_comm_bytes_per_gpu(GPT_7B, group_tokens=20_000, sp_degree=8)
        assert v2 == pytest.approx(2 * v1)

    def test_rejects_bad_inputs(self):
        with pytest.raises(ValueError, match="sp_degree"):
            sp_step_comm_bytes_per_gpu(GPT_7B, 1000, 0)
        with pytest.raises(ValueError, match="group_tokens"):
            sp_step_comm_bytes_per_gpu(GPT_7B, -1, 8)
