"""Degenerate cold-input coverage for the planning engine.

The cold-path machinery (dominance-pruned layout stacks, stacked LPT,
MILP skeleton reuse, incumbent cutoffs) must behave on the corners the
throughput benchmarks never visit: single-sequence micro-batches,
all-equal-length batches, and corpora whose longest sequence forces
``d_big == num_gpus`` — a one-layout family of a single full-cluster
group — through both planner backends and the full solver loop.
"""

import pytest

from repro.core.planner import PlannerConfig, plan_microbatch
from repro.core.planner_greedy import (
    _layout_stack,
    calibrate_vector_threshold,
    candidate_layouts,
    plan_microbatch_greedy,
)
from repro.core.solver import FlexSPSolver, SolverConfig

MILP_CFG = PlannerConfig(time_limit=2.0, mip_rel_gap=0.05)

BACKENDS = (
    ("greedy", plan_microbatch_greedy, None),
    ("milp", plan_microbatch, MILP_CFG),
)


def _covers(plan, lengths):
    assigned = sorted(s for g in plan.groups for s in g.lengths)
    assert assigned == sorted(lengths)


class TestSingleSequence:
    @pytest.mark.parametrize("name,planner,cfg", BACKENDS)
    def test_single_short_sequence(self, cost_model8, name, planner, cfg):
        plan, predicted = planner((2048,), cost_model8, cfg)
        _covers(plan, (2048,))
        assert len(plan.groups) == 1
        assert predicted > 0

    @pytest.mark.parametrize("name,planner,cfg", BACKENDS)
    def test_single_sequence_solver_batch(
        self, cost_model8, name, planner, cfg
    ):
        solver = FlexSPSolver(
            cost_model8,
            SolverConfig(num_trials=2, backend=name, planner=cfg or MILP_CFG),
        )
        result = solver.solve((2048,))
        assert result.num_microbatches == 1
        assert result.tokens == 2048


class TestAllEqualLengths:
    @pytest.mark.parametrize("name,planner,cfg", BACKENDS)
    def test_equal_lengths_plan(self, cost_model8, name, planner, cfg):
        lengths = (4096,) * 8
        plan, predicted = planner(lengths, cost_model8, cfg)
        _covers(plan, lengths)
        assert predicted > 0

    def test_equal_lengths_solver_both_backends_cover(self, cost_model8):
        lengths = (4096,) * 24
        outcomes = {}
        for backend in ("greedy", "milp"):
            solver = FlexSPSolver(
                cost_model8,
                SolverConfig(
                    num_trials=2, backend=backend, planner=MILP_CFG
                ),
            )
            result = solver.solve(lengths)
            assert result.tokens == sum(lengths)
            outcomes[backend] = result.predicted_time
        # The MILP (with its greedy incumbent) never predicts slower.
        assert outcomes["milp"] <= outcomes["greedy"] * 1.001


class TestFullClusterDBig:
    """Longest sequence only fits at SP = num_gpus: the candidate
    family degenerates to the single one-group layout ``(N,)``."""

    def _long_sequence(self, model):
        per_device = model.max_tokens_per_device()
        longest = int(per_device * (model.cluster.num_gpus - 1))
        assert model.min_degree_for_sequence(longest) == model.cluster.num_gpus
        return longest

    def test_one_group_layout_family(self, cost_model8):
        longest = self._long_sequence(cost_model8)
        layouts = candidate_layouts(cost_model8, longest)
        assert layouts == [(cost_model8.cluster.num_gpus,)]
        stack = _layout_stack(cost_model8, longest)
        assert stack.lanes.tolist() == [1]

    @pytest.mark.parametrize("name,planner,cfg", BACKENDS)
    def test_planners_produce_one_group(self, cost_model8, name, planner, cfg):
        longest = self._long_sequence(cost_model8)
        lengths = (longest, 1024, 1024)
        plan, predicted = planner(lengths, cost_model8, cfg)
        _covers(plan, lengths)
        assert predicted > 0
        # The long sequence's group must span the whole cluster.
        long_group = next(g for g in plan.groups if longest in g.lengths)
        assert long_group.degree == cost_model8.cluster.num_gpus

    @pytest.mark.parametrize("backend", ["greedy", "milp"])
    def test_solver_handles_forced_full_cluster(self, cost_model8, backend):
        longest = self._long_sequence(cost_model8)
        batch = (longest, 2048, 2048, 1024)
        solver = FlexSPSolver(
            cost_model8,
            SolverConfig(num_trials=2, backend=backend, planner=MILP_CFG),
        )
        result = solver.solve(batch)
        assert result.tokens == sum(batch)
        # The greedy stage breakdown is recorded for cold solves.
        assert result.stats is not None
        stages = result.stats.stage_seconds()
        assert stages["enumerate"] >= 0.0
        if backend == "milp":
            assert stages["milp_solve"] > 0.0
        else:
            assert stages["lpt"] > 0.0


class TestThresholdCalibration:
    def test_calibrator_returns_positive_lane_count(self):
        threshold = calibrate_vector_threshold(
            cluster_sizes=(8,), sequence_count=8, repeats=1
        )
        assert isinstance(threshold, int)
        assert threshold > 0


class TestStageTimingFrames:
    def test_nested_collectors_stay_independent(self):
        from repro.core import stage_timing

        with stage_timing.collect() as outer:
            with stage_timing.collect() as inner:
                stage_timing.add("lpt", 1.0)
            # Equal-content frames must be removed by identity: this
            # add lands in the outer frame only.
            stage_timing.add("enumerate", 2.0)
        assert inner == {"lpt": 1.0}
        assert outer == {"lpt": 1.0, "enumerate": 2.0}

    def test_add_without_frame_is_a_noop(self):
        from repro.core import stage_timing

        stage_timing.add("lpt", 1.0)  # must not raise or leak state
        with stage_timing.collect() as frame:
            pass
        assert frame == {}

    def test_stage_vocabulary_matches_solve_stats(self):
        from repro.core.stage_timing import STAGES
        from repro.core.types import SolveStats

        assert tuple(SolveStats().stage_seconds()) == STAGES


class TestSkeletonCacheConcurrency:
    def test_concurrent_milp_solves_under_tiny_skeleton_lru(self, cost_model8):
        """Parallel in-process MILP solves with a capacity-1 skeleton
        LRU: every lookup races an eviction, which must never KeyError
        (plans stay bit-identical to serial solves)."""
        from concurrent.futures import ThreadPoolExecutor

        from repro.core import planner

        batches = [
            (4096, 8192, 2048),
            (1024, 1024, 1024, 1024, 512),
            (16384, 512),
            (3000, 3000, 3000),
        ]
        serial = [plan_microbatch(b, cost_model8, MILP_CFG) for b in batches]
        saved = planner._SKELETON_CAPACITY
        try:
            planner._SKELETON_CAPACITY = 1
            with ThreadPoolExecutor(max_workers=4) as pool:
                futures = [
                    pool.submit(plan_microbatch, b, cost_model8, MILP_CFG)
                    for b in batches * 3
                ]
                results = [f.result() for f in futures]
        finally:
            planner._SKELETON_CAPACITY = saved
        for i, (plan, predicted) in enumerate(results):
            ref_plan, ref_predicted = serial[i % len(batches)]
            assert predicted == ref_predicted
            assert plan == ref_plan
