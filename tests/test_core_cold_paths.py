"""Degenerate cold-input coverage for the planning engine.

The cold-path machinery (dominance-pruned layout stacks, stacked LPT,
MILP skeleton reuse, incumbent cutoffs) must behave on the corners the
throughput benchmarks never visit: single-sequence micro-batches,
all-equal-length batches, and corpora whose longest sequence forces
``d_big == num_gpus`` — a one-layout family of a single full-cluster
group — through both planner backends and the full solver loop.
"""

import numpy as np
import pytest

from repro.core import kernels
from repro.core import planner_greedy as planner_greedy_module
from repro.core.blaster import balanced_cut_points_multi
from repro.core.bucketing import optimal_buckets
from repro.core.planner import PlannerConfig, plan_microbatch
from repro.core.planner_greedy import (
    _assign_lpt_scalar,
    _assign_lpt_stacked,
    _layout_stack,
    calibrate_vector_threshold,
    candidate_layouts,
    plan_microbatch_greedy,
)
from repro.core.solver import FlexSPSolver, SolverConfig
from repro.cost.model import cost_table

MILP_CFG = PlannerConfig(time_limit=2.0, mip_rel_gap=0.05)

BACKENDS = (
    ("greedy", plan_microbatch_greedy, None),
    ("milp", plan_microbatch, MILP_CFG),
)


def _covers(plan, lengths):
    assigned = sorted(s for g in plan.groups for s in g.lengths)
    assert assigned == sorted(lengths)


class TestSingleSequence:
    @pytest.mark.parametrize("name,planner,cfg", BACKENDS)
    def test_single_short_sequence(self, cost_model8, name, planner, cfg):
        plan, predicted = planner((2048,), cost_model8, cfg)
        _covers(plan, (2048,))
        assert len(plan.groups) == 1
        assert predicted > 0

    @pytest.mark.parametrize("name,planner,cfg", BACKENDS)
    def test_single_sequence_solver_batch(
        self, cost_model8, name, planner, cfg
    ):
        solver = FlexSPSolver(
            cost_model8,
            SolverConfig(num_trials=2, backend=name, planner=cfg or MILP_CFG),
        )
        result = solver.solve((2048,))
        assert result.num_microbatches == 1
        assert result.tokens == 2048


class TestAllEqualLengths:
    @pytest.mark.parametrize("name,planner,cfg", BACKENDS)
    def test_equal_lengths_plan(self, cost_model8, name, planner, cfg):
        lengths = (4096,) * 8
        plan, predicted = planner(lengths, cost_model8, cfg)
        _covers(plan, lengths)
        assert predicted > 0

    def test_equal_lengths_solver_both_backends_cover(self, cost_model8):
        lengths = (4096,) * 24
        outcomes = {}
        for backend in ("greedy", "milp"):
            solver = FlexSPSolver(
                cost_model8,
                SolverConfig(
                    num_trials=2, backend=backend, planner=MILP_CFG
                ),
            )
            result = solver.solve(lengths)
            assert result.tokens == sum(lengths)
            outcomes[backend] = result.predicted_time
        # The MILP (with its greedy incumbent) never predicts slower.
        assert outcomes["milp"] <= outcomes["greedy"] * 1.001


class TestFullClusterDBig:
    """Longest sequence only fits at SP = num_gpus: the candidate
    family degenerates to the single one-group layout ``(N,)``."""

    def _long_sequence(self, model):
        per_device = model.max_tokens_per_device()
        longest = int(per_device * (model.cluster.num_gpus - 1))
        assert model.min_degree_for_sequence(longest) == model.cluster.num_gpus
        return longest

    def test_one_group_layout_family(self, cost_model8):
        longest = self._long_sequence(cost_model8)
        layouts = candidate_layouts(cost_model8, longest)
        assert layouts == [(cost_model8.cluster.num_gpus,)]
        stack = _layout_stack(cost_model8, longest)
        assert stack.lanes.tolist() == [1]

    @pytest.mark.parametrize("name,planner,cfg", BACKENDS)
    def test_planners_produce_one_group(self, cost_model8, name, planner, cfg):
        longest = self._long_sequence(cost_model8)
        lengths = (longest, 1024, 1024)
        plan, predicted = planner(lengths, cost_model8, cfg)
        _covers(plan, lengths)
        assert predicted > 0
        # The long sequence's group must span the whole cluster.
        long_group = next(g for g in plan.groups if longest in g.lengths)
        assert long_group.degree == cost_model8.cluster.num_gpus

    @pytest.mark.parametrize("backend", ["greedy", "milp"])
    def test_solver_handles_forced_full_cluster(self, cost_model8, backend):
        longest = self._long_sequence(cost_model8)
        batch = (longest, 2048, 2048, 1024)
        solver = FlexSPSolver(
            cost_model8,
            SolverConfig(num_trials=2, backend=backend, planner=MILP_CFG),
        )
        result = solver.solve(batch)
        assert result.tokens == sum(batch)
        # The greedy stage breakdown is recorded for cold solves.
        assert result.stats is not None
        stages = result.stats.stage_seconds()
        assert stages["enumerate"] >= 0.0
        if backend == "milp":
            assert stages["milp_solve"] > 0.0
        else:
            assert stages["lpt"] > 0.0


class TestThresholdCalibration:
    def test_calibrator_returns_positive_lane_count(self):
        cal = calibrate_vector_threshold(
            cluster_sizes=(8,), sequence_count=8, repeats=1
        )
        assert isinstance(cal.threshold, int)
        assert cal.threshold > 0
        assert int(cal) == cal.threshold
        assert cal.tier in ("native", "fallback")
        assert cal.samples
        for lanes, winner in cal.samples:
            assert lanes > 0
            assert winner in ("scalar", "stacked")


class TestKernelTierDegenerates:
    """The degenerate corners above, routed explicitly through the
    compiled kernel tier.

    ``kernels.force("native")`` dispatches through the jitted twins
    when numba is importable (CI's native leg) and degrades to the
    fallback otherwise, so on top of the forced-tier plan identity the
    un-jitted kernel *bodies* are run directly against the fallback
    implementations — the corner cases exercise the compiled algorithm
    on every host.
    """

    def _plan(self, model, lengths):
        plan, predicted = plan_microbatch_greedy(lengths, model)
        return plan, predicted

    @pytest.mark.parametrize(
        "lengths",
        [(2048,), (4096,) * 8],
        ids=["single_sequence", "all_equal"],
    )
    @pytest.mark.parametrize("threshold", [0, 10_000], ids=["stacked", "scalar"])
    def test_plans_identical_across_forced_tiers(
        self, cost_model8, monkeypatch, lengths, threshold
    ):
        monkeypatch.setattr(
            planner_greedy_module, "_VECTOR_THRESHOLD", threshold
        )
        with kernels.force("fallback"):
            ref_plan, ref_predicted = self._plan(cost_model8, lengths)
        with kernels.force("native"):
            plan, predicted = self._plan(cost_model8, lengths)
        assert plan == ref_plan
        assert predicted == ref_predicted

    def test_d_big_full_cluster_identical_across_tiers(self, cost_model8):
        per_device = cost_model8.max_tokens_per_device()
        longest = int(per_device * (cost_model8.cluster.num_gpus - 1))
        lengths = (longest, 1024, 1024)
        with kernels.force("fallback"):
            ref_plan, ref_predicted = self._plan(cost_model8, lengths)
        with kernels.force("native"):
            plan, predicted = self._plan(cost_model8, lengths)
        assert plan == ref_plan
        assert predicted == ref_predicted
        long_group = next(g for g in plan.groups if longest in g.lengths)
        assert long_group.degree == cost_model8.cluster.num_gpus

    @pytest.mark.parametrize(
        "lengths",
        [(2048,), (4096,) * 8],
        ids=["single_sequence", "all_equal"],
    )
    def test_scalar_body_matches_fallback(self, cost_model8, lengths):
        table = cost_table(cost_model8)
        ordered = sorted(lengths, reverse=True)
        stack = _layout_stack(cost_model8, max(lengths))
        rows = stack.surviving(float(sum(lengths)), float(max(lengths)))
        assert rows.size > 0
        ordered_arr = np.asarray(ordered, dtype=np.float64)
        for row in (int(r) for r in rows):
            lanes = int(stack.lanes[row])
            feasible, choices, makespan = kernels.KERNEL_BODIES["lpt_scalar"](
                ordered_arr,
                stack.degrees[row, :lanes],
                stack.comm_per_token[row, :lanes],
                stack.comm_beta[row, :lanes],
                stack.caps[row, :lanes],
                table.alpha1,
                table.alpha2,
                table.beta1,
                table.gather,
                table.exposed_gather,
            )
            ref = _assign_lpt_scalar(
                ordered, stack.lane_constants[row], table
            )
            if ref is None:
                assert not feasible
                continue
            assert feasible
            ref_groups, ref_makespan = ref
            assert makespan == ref_makespan
            groups = [[] for __ in range(lanes)]
            for step, s in enumerate(ordered):
                groups[int(choices[step])].append(s)
            assert groups == ref_groups

    def test_stacked_body_matches_fallback_on_one_layout_family(
        self, cost_model8
    ):
        # d_big == num_gpus: the stacked pass runs a (1, 1) lane matrix.
        per_device = cost_model8.max_tokens_per_device()
        longest = int(per_device * (cost_model8.cluster.num_gpus - 1))
        lengths = (longest,)
        table = cost_table(cost_model8)
        ordered = sorted(lengths, reverse=True)
        stack = _layout_stack(cost_model8, longest)
        assert stack.caps.shape[0] == 1
        rows = stack.surviving(float(sum(lengths)), float(longest))
        feasible, choices, makespans, winner = kernels.KERNEL_BODIES[
            "lpt_stacked"
        ](
            np.asarray(ordered, dtype=np.float64),
            stack.caps[rows],
            stack.degrees[rows],
            stack.comm_per_token[rows],
            stack.comm_beta[rows],
            table.alpha1,
            table.alpha2,
            table.beta1,
            table.gather,
            table.exposed_gather,
        )
        ref = _assign_lpt_stacked(ordered, stack, rows, table)
        assert ref is not None
        ref_choices, ref_makespans, ref_winner = ref
        assert feasible
        assert int(winner) == ref_winner
        assert choices.tolist() == ref_choices.tolist()
        assert makespans.tolist() == ref_makespans.tolist()

    def test_one_bucket_dp_identical_across_tiers(self):
        lengths = (100, 200, 300, 400)
        with kernels.force("fallback"):
            ref = optimal_buckets(lengths, 1)
        with kernels.force("native"):
            buckets = optimal_buckets(lengths, 1)
        assert buckets == ref
        assert len(ref) == 1
        assert ref[0].upper == 400

    def test_one_bucket_dp_body_spans_everything(self):
        values, counts = np.unique(
            np.asarray([7, 13, 21, 40], dtype=np.int64), return_counts=True
        )
        n = len(values)
        cnt = np.concatenate(([0], np.cumsum(counts)))
        wsum = np.concatenate(([0], np.cumsum(values * counts)))
        choice = kernels.KERNEL_BODIES["bucketing_dp"](
            0, values, cnt, wsum, cnt[:0], n, 1
        )
        assert choice.shape == (n + 1, 2)
        # One bucket: the single layer's boundary for k == n is 0.
        assert int(choice[n, 1]) == 0

    def test_blaster_trivial_and_dp_counts_identical_across_tiers(self):
        # Counts 1 and len(lengths) skip the DP entirely (the "empty
        # DP" corner); count 3 runs it.  All must agree across tiers.
        lengths = [64] * 12
        counts = (1, 3, 12)
        with kernels.force("fallback"):
            ref = balanced_cut_points_multi(lengths, counts)
        with kernels.force("native"):
            cuts = balanced_cut_points_multi(lengths, counts)
        assert cuts == ref
        assert ref[1] == [12]
        assert ref[12] == list(range(1, 13))
        assert ref[3] == [4, 8, 12]

    def test_blaster_dp_body_single_sequence(self):
        prefix = np.asarray([0, 5], dtype=np.int64)
        empty = prefix[:0]
        choice = kernels.KERNEL_BODIES["blaster_dp"](
            1, empty, empty, empty, prefix, 1, 1
        )
        assert choice.shape == (2, 2)
        assert int(choice[1, 1]) == 0


class TestStageTimingFrames:
    def test_nested_collectors_stay_independent(self):
        from repro.core import stage_timing

        with stage_timing.collect() as outer:
            with stage_timing.collect() as inner:
                stage_timing.add("lpt", 1.0)
            # Equal-content frames must be removed by identity: this
            # add lands in the outer frame only.
            stage_timing.add("enumerate", 2.0)
        assert inner == {"lpt": 1.0}
        assert outer == {"lpt": 1.0, "enumerate": 2.0}

    def test_add_without_frame_is_a_noop(self):
        from repro.core import stage_timing

        stage_timing.add("lpt", 1.0)  # must not raise or leak state
        with stage_timing.collect() as frame:
            pass
        assert frame == {}

    def test_stage_vocabulary_matches_solve_stats(self):
        from repro.core.stage_timing import STAGES
        from repro.core.types import SolveStats

        assert tuple(SolveStats().stage_seconds()) == STAGES


class TestSkeletonCacheConcurrency:
    def test_concurrent_milp_solves_under_tiny_skeleton_lru(self, cost_model8):
        """Parallel in-process MILP solves with a capacity-1 skeleton
        LRU: every lookup races an eviction, which must never KeyError
        (plans stay bit-identical to serial solves)."""
        from concurrent.futures import ThreadPoolExecutor

        from repro.core import planner

        batches = [
            (4096, 8192, 2048),
            (1024, 1024, 1024, 1024, 512),
            (16384, 512),
            (3000, 3000, 3000),
        ]
        serial = [plan_microbatch(b, cost_model8, MILP_CFG) for b in batches]
        saved = planner._SKELETON_CAPACITY
        try:
            planner._SKELETON_CAPACITY = 1
            with ThreadPoolExecutor(max_workers=4) as pool:
                futures = [
                    pool.submit(plan_microbatch, b, cost_model8, MILP_CFG)
                    for b in batches * 3
                ]
                results = [f.result() for f in futures]
        finally:
            planner._SKELETON_CAPACITY = saved
        for i, (plan, predicted) in enumerate(results):
            ref_plan, ref_predicted = serial[i % len(batches)]
            assert predicted == ref_predicted
            assert plan == ref_plan
