"""Tests for repro.core.blaster: micro-batch chunking."""

import pytest

from repro.core.blaster import (
    balanced_cut_points,
    blast,
    max_microbatch_tokens,
    min_microbatch_count,
)
from repro.core.types import SequenceBatch


class TestMinMicrobatchCount:
    def test_exact_fit_is_one(self):
        assert min_microbatch_count(1000, 1000) == 1

    def test_ceil_division(self):
        assert min_microbatch_count(1001, 1000) == 2
        assert min_microbatch_count(2500, 1000) == 3

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError, match="batch_tokens"):
            min_microbatch_count(0, 100)
        with pytest.raises(ValueError, match="capacity"):
            min_microbatch_count(100, 0)


class TestBalancedCutPoints:
    def test_single_chunk(self):
        assert balanced_cut_points([1, 2, 3], 1) == [3]

    def test_chunks_cover_everything(self):
        cuts = balanced_cut_points([5, 5, 5, 5, 5, 5], 3)
        assert cuts[-1] == 6
        assert len(cuts) == 3

    def test_uniform_lengths_split_evenly(self):
        cuts = balanced_cut_points([10] * 12, 4)
        assert cuts == [3, 6, 9, 12]

    def test_minimises_max_segment(self):
        """Appendix A objective: no contiguous 2-split of [1,2,3,4,5]
        beats max=9 ({1,2,3,}|{4,5})."""
        lengths = [1, 2, 3, 4, 5]
        cuts = balanced_cut_points(lengths, 2)
        first = sum(lengths[: cuts[0]])
        second = sum(lengths[cuts[0] :])
        assert max(first, second) == 9

    def test_single_chunk_early_exit_matches_dp(self):
        """num_chunks == 1 must return the whole range without a DP."""
        lengths = [3, 9, 27, 81]
        assert balanced_cut_points(lengths, 1) == [len(lengths)]

    def test_singleton_chunks_early_exit_matches_dp(self):
        """num_chunks == len(lengths) forces one sequence per chunk."""
        lengths = [2, 4, 8, 16, 32]
        assert balanced_cut_points(lengths, len(lengths)) == [1, 2, 3, 4, 5]
        parts = blast(SequenceBatch(lengths=tuple(lengths)), len(lengths))
        assert [p.lengths for p in parts] == [(s,) for s in sorted(lengths)]

    def test_rejects_more_chunks_than_sequences(self):
        with pytest.raises(ValueError, match="non-empty"):
            balanced_cut_points([1, 2], 3)

    def test_rejects_nonpositive_chunks(self):
        with pytest.raises(ValueError, match="num_chunks"):
            balanced_cut_points([1], 0)


class TestBlast:
    def test_partition_preserves_multiset(self):
        batch = SequenceBatch(lengths=(9, 1, 5, 5, 7, 3, 2, 8))
        parts = blast(batch, 3)
        combined = sorted(s for p in parts for s in p.lengths)
        assert combined == sorted(batch.lengths)

    def test_sorted_microbatches_have_contiguous_ranges(self):
        """Takeaway 2: with sorting, each micro-batch spans a contiguous
        length range, minimising within-micro-batch variance."""
        batch = SequenceBatch(lengths=(100, 5, 60, 7, 80, 6, 90, 8))
        parts = blast(batch, 2, sort=True)
        assert max(parts[0].lengths) <= min(parts[1].lengths)

    def test_unsorted_preserves_arrival_order(self):
        batch = SequenceBatch(lengths=(100, 5, 60, 7))
        parts = blast(batch, 2, sort=False)
        flattened = [s for p in parts for s in p.lengths]
        assert flattened == [100, 5, 60, 7]

    def test_token_balance_beats_count_balance(self):
        """One huge sequence should sit alone; the DP must not split
        the rest evenly by count."""
        batch = SequenceBatch(lengths=(1, 1, 1, 1, 1, 1, 1, 1, 1000))
        parts = blast(batch, 2)
        assert max_microbatch_tokens(parts) == 1000
        assert parts[1].lengths == (1000,)

    def test_max_tokens_decreases_with_more_microbatches(self):
        batch = SequenceBatch(lengths=tuple(range(1, 41)))
        maxima = [max_microbatch_tokens(blast(batch, m)) for m in (1, 2, 4, 8)]
        assert maxima == sorted(maxima, reverse=True)
        assert maxima[-1] < maxima[0]

    def test_max_microbatch_tokens_rejects_empty(self):
        with pytest.raises(ValueError, match="no micro-batches"):
            max_microbatch_tokens([])
