"""Property-based tests for sequence bucketing (hypothesis)."""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.core.bucketing import (
    bucketing_error,
    fixed_interval_buckets,
    naive_buckets,
    optimal_buckets,
)

lengths_strategy = st.lists(
    st.integers(min_value=1, max_value=200_000), min_size=1, max_size=120
)


@given(lengths=lengths_strategy, q=st.integers(min_value=1, max_value=20))
@settings(max_examples=60, deadline=None)
def test_optimal_partitions_exactly(lengths, q):
    """Every sequence lands in exactly one bucket; multiset preserved."""
    buckets = optimal_buckets(lengths, q)
    members = sorted(s for b in buckets for s in b.lengths)
    assert members == sorted(lengths)


@given(lengths=lengths_strategy, q=st.integers(min_value=1, max_value=20))
@settings(max_examples=60, deadline=None)
def test_optimal_buckets_are_intervals(lengths, q):
    """Buckets form disjoint ascending intervals with valid uppers."""
    buckets = optimal_buckets(lengths, q)
    for b in buckets:
        assert max(b.lengths) <= b.upper
    for prev, cur in zip(buckets, buckets[1:]):
        assert prev.upper < min(cur.lengths)


@given(lengths=lengths_strategy, q=st.integers(min_value=1, max_value=20))
@settings(max_examples=60, deadline=None)
def test_optimal_never_worse_than_naive(lengths, q):
    """DP optimality: no fixed-interval scheme with the same bucket
    count can have lower deviation."""
    optimal = optimal_buckets(lengths, q)
    naive = naive_buckets(lengths, q)
    if len(naive) <= len(optimal) or len(optimal) == q:
        # Fair comparison only when naive doesn't get extra buckets.
        if len(naive) <= q:
            assert bucketing_error(optimal) <= bucketing_error(naive)


@given(lengths=lengths_strategy)
@settings(max_examples=60, deadline=None)
def test_bucket_count_never_exceeds_unique_lengths(lengths):
    buckets = optimal_buckets(lengths, 16)
    assert len(buckets) <= min(16, len(set(lengths)))


@given(lengths=lengths_strategy)
@settings(max_examples=60, deadline=None)
def test_enough_buckets_means_zero_error(lengths):
    """With Q >= distinct lengths, bucketing must be lossless."""
    buckets = optimal_buckets(lengths, len(set(lengths)))
    assert bucketing_error(buckets) == 0


@given(
    lengths=lengths_strategy,
    width=st.integers(min_value=128, max_value=8192),
)
@settings(max_examples=60, deadline=None)
def test_fixed_interval_deviation_bounded_by_width(lengths, width):
    """No sequence deviates more than one interval width."""
    for bucket in fixed_interval_buckets(lengths, width=width):
        for s in bucket.lengths:
            assert bucket.upper - s < width


@given(lengths=lengths_strategy, q=st.integers(min_value=1, max_value=20))
@settings(max_examples=40, deadline=None)
def test_error_is_nonnegative_and_bounded(lengths, q):
    buckets = optimal_buckets(lengths, q)
    error = bucketing_error(buckets)
    assert error >= 0
    assert error <= max(lengths) * len(lengths)
