"""Tests for repro.core.faults: the deterministic fault-injection plane.

Covers the spec grammar, the disarmed zero-cost path, the
once-globally ledger gate (the property that keeps ``worker_kill``
from killing every restarted worker forever), and the two data-fault
realisations owned by the cache store — a torn spill write must read
back as *cold* and a stale lock (dead recorded holder) must be broken
and counted, never waited out.  The resumable planner-pool collection
and the shard-reassignment escalation rung get direct units here too;
the end-to-end recovery ladder lives in test_experiments_sweep.py and
benchmarks/test_bench_chaos.py.
"""

from __future__ import annotations

import os

import pytest

from repro.core import faults
from repro.core.cache_store import (
    CacheStore,
    WorkloadState,
    context_digest,
    entries_from_cache,
)
from repro.cluster.topology import standard_cluster
from repro.core.faults import FaultSchedule, FaultSpec, FaultStats
from repro.core.solver import FlexSPSolver, SolverConfig, SolverPool
from repro.core.types import SequenceBatch
from repro.data.distributions import COMMONCRAWL, GITHUB
from repro.experiments.sweep import _ShardScheduler, grid_cells
from repro.experiments.workloads import Workload
from repro.model.config import GPT_7B

SIGNATURE = ("gpt-7b", "github", 32 * 1024, 8)
SOLVER = SolverConfig(backend="greedy", num_trials=2)


@pytest.fixture(autouse=True)
def _disarmed():
    """Every test starts and ends with no schedule armed."""
    faults.disarm()
    yield
    faults.disarm()


class TestSpecGrammar:
    def test_parse_defaults_to_first_occurrence(self):
        spec = FaultSpec.parse("worker_kill@cell")
        assert spec == FaultSpec("worker_kill", "cell", 0)

    def test_parse_explicit_occurrence_and_star(self):
        assert FaultSpec.parse("torn_write@spill:2").occurrence == 2
        assert FaultSpec.parse("worker_kill@cell:*").occurrence is None

    def test_str_round_trips(self):
        for text in (
            "worker_kill@cell:0",
            "hang@cell:3",
            "stale_lock@prune:*",
            "torn_write@spill:1",
            "conn_reset@accept:0",
            "torn_frame@send:2",
            "delay@recv:*",
            "drop_response@send:0",
        ):
            assert str(FaultSpec.parse(text)) == text

    def test_network_menu_is_well_formed(self):
        # Every menu entry parses, and the transport's kinds/sites are
        # all reachable from the chaos CLI's spec grammar.
        for kind, site in faults.NETWORK_FAULT_MENU:
            spec = FaultSpec.parse(f"{kind}@{site}")
            assert spec.kind in faults.FAULT_KINDS
            assert spec.site in faults.INJECTION_SITES
        assert {"conn_reset", "torn_frame", "delay", "drop_response"} <= set(
            faults.FAULT_KINDS
        )
        assert {"accept", "handshake", "recv", "send"} <= set(
            faults.INJECTION_SITES
        )

    @pytest.mark.parametrize(
        "bad",
        [
            "worker_kill",  # no site
            "explode@cell",  # unknown kind
            "worker_kill@coffee",  # unknown site
            "worker_kill@cell:soon",  # non-integer occurrence
            "worker_kill@cell:-1",  # negative occurrence
        ],
    )
    def test_malformed_specs_raise(self, bad):
        with pytest.raises(ValueError):
            FaultSpec.parse(bad)

    def test_schedule_parses_comma_separated_specs(self):
        schedule = FaultSchedule.parse(
            "worker_kill@cell:3, torn_write@spill", seed=7
        )
        assert [str(s) for s in schedule.specs] == [
            "worker_kill@cell:3",
            "torn_write@spill:0",
        ]
        assert schedule.seed == 7
        assert str(schedule) == "worker_kill@cell:3,torn_write@spill:0"

    def test_empty_schedule_raises(self):
        with pytest.raises(ValueError, match="no fault specs"):
            FaultSchedule.parse(" , ")

    def test_single_random_is_deterministic_per_seed(self):
        a = FaultSchedule.single_random(42)
        b = FaultSchedule.single_random(42)
        c = FaultSchedule.single_random(43)
        assert a.specs == b.specs
        assert len(a.specs) == 1
        assert (a.specs[0].kind, a.specs[0].site) in faults.RANDOM_FAULT_MENU
        # Different seeds cover the menu: at least two distinct draws
        # in any short seed range.
        draws = {FaultSchedule.single_random(s).specs for s in range(8)}
        assert len(draws) > 1
        assert c.seed == 43

    def test_hang_seconds_must_be_positive(self):
        with pytest.raises(ValueError, match="hang_seconds"):
            FaultSchedule(
                specs=(FaultSpec("hang", "cell"),), hang_seconds=0.0
            )


class TestPlane:
    def test_disarmed_visits_are_noops(self):
        assert faults.active_schedule() is None
        for site in faults.INJECTION_SITES:
            assert faults.maybe_inject(site) is None

    def test_data_fault_fires_at_exact_occurrence(self, tmp_path):
        schedule = FaultSchedule.parse(
            "torn_write@spill:2", record_path=str(tmp_path / "ledger")
        )
        with faults.armed(schedule):
            assert faults.maybe_inject("spill") is None
            assert faults.maybe_inject("spill") is None
            assert faults.maybe_inject("spill") == "torn_write"
            assert faults.maybe_inject("spill") is None
        assert schedule.read_ledger() == ["torn_write@spill"]
        assert schedule.injection_counts() == {"torn_write@spill": 1}

    def test_integer_specs_fire_once_globally(self, tmp_path):
        """A restarted worker (new plane, same ledger) must not
        re-fire a once-only spec — otherwise kill faults would kill
        every replacement worker and recovery could never converge."""
        schedule = FaultSchedule.parse(
            "torn_write@spill:0", record_path=str(tmp_path / "ledger")
        )
        with faults.armed(schedule):
            assert faults.maybe_inject("spill") == "torn_write"
        # Second plane over the same schedule: fresh per-process visit
        # counters, shared ledger.
        with faults.armed(schedule):
            assert faults.maybe_inject("spill") is None
        assert schedule.injection_counts() == {"torn_write@spill": 1}

    def test_star_specs_fire_every_visit(self, tmp_path):
        schedule = FaultSchedule.parse(
            "torn_write@spill:*", record_path=str(tmp_path / "ledger")
        )
        with faults.armed(schedule):
            for _ in range(3):
                assert faults.maybe_inject("spill") == "torn_write"
        assert schedule.injection_counts() == {"torn_write@spill": 3}

    def test_armed_restores_previous_schedule(self):
        outer = FaultSchedule.parse("torn_write@spill:5")
        inner = FaultSchedule.parse("stale_lock@lock:5")
        with faults.armed(outer):
            with faults.armed(inner):
                assert faults.active_schedule() is inner
            assert faults.active_schedule() is outer
        assert faults.active_schedule() is None

    def test_dead_pid_is_not_alive(self):
        pid = faults.dead_pid()
        assert pid > 0
        with pytest.raises(OSError):
            os.kill(pid, 0)

    def test_fault_stats_totals_and_dict(self):
        stats = FaultStats(
            injections=(("worker_kill@cell", 2), ("hang@cell", 1)),
            cell_retries=2,
            pool_restarts=1,
        )
        assert stats.total_injections == 3
        payload = stats.to_dict()
        assert payload["injections"] == {
            "worker_kill@cell": 2,
            "hang@cell": 1,
        }
        assert payload["total_injections"] == 3
        assert payload["cell_retries"] == 2
        assert payload["lock_breaks"] == 0


def _spilled_state(model) -> WorkloadState:
    solver = FlexSPSolver(model, SOLVER)
    solver.solve(SequenceBatch(lengths=(4096, 8192, 2048, 1024)))
    state = WorkloadState(signature=repr(SIGNATURE))
    state.coeffs = solver.model.coeffs
    state.comm_model = solver.model.comm_model
    digest = context_digest(solver.config.planner, solver.config.backend)
    state.plans[digest] = entries_from_cache(solver.cache)
    return state


class TestStoreRealisations:
    """The cache store realises torn_write and stale_lock itself."""

    def test_torn_write_reads_back_cold_then_heals(
        self, tmp_path, cost_model8
    ):
        state = _spilled_state(cost_model8)
        store = CacheStore(tmp_path / "store")
        schedule = FaultSchedule.parse(
            "torn_write@spill:0", record_path=str(tmp_path / "ledger")
        )
        with faults.armed(schedule):
            store.save(SIGNATURE, state)
        assert schedule.injection_counts() == {"torn_write@spill": 1}
        # The torn file is corruption, not an error: cold, never fatal.
        assert store.load(SIGNATURE) is None
        # A clean re-save through the same store heals the entry.
        store.save(SIGNATURE, state)
        restored = store.load(SIGNATURE)
        assert restored is not None
        assert restored.coeffs == state.coeffs
        assert restored.plans.keys() == state.plans.keys()

    def test_stale_lock_is_broken_and_counted(self, tmp_path, cost_model8):
        state = _spilled_state(cost_model8)
        store = CacheStore(tmp_path / "store")
        schedule = FaultSchedule.parse(
            "stale_lock@lock:0", record_path=str(tmp_path / "ledger")
        )
        with faults.armed(schedule):
            store.save(SIGNATURE, state)
        assert schedule.injection_counts() == {"stale_lock@lock": 1}
        assert store.counters()["lock_breaks"] == 1
        # The save went through despite the orphaned lock.
        restored = store.load(SIGNATURE)
        assert restored is not None
        assert restored.coeffs == state.coeffs

    def test_stale_lock_on_prune_is_broken(self, tmp_path, cost_model8):
        state = _spilled_state(cost_model8)
        store = CacheStore(tmp_path / "store")
        store.save(SIGNATURE, state)
        schedule = FaultSchedule.parse(
            "stale_lock@prune:0", record_path=str(tmp_path / "ledger")
        )
        with faults.armed(schedule):
            result = store.prune(dry_run=True)
        assert schedule.injection_counts() == {"stale_lock@prune": 1}
        assert store.counters()["lock_breaks"] >= 1
        assert result.files_kept == 1


class TestResumablePlanning:
    def test_pool_survives_worker_kill_mid_batch(self, cost_model8):
        """plan_shapes completes after a planner worker dies, without
        replanning shapes that already finished, and the outcomes stay
        bit-identical to in-process planning."""
        batch = SequenceBatch(lengths=(4096, 8192, 2048, 1024, 512, 16384) * 2)
        reference = FlexSPSolver(cost_model8, SOLVER)
        pending = reference.pending_shapes(batch)
        assert len(pending) > 2
        expected = reference.plan_shapes_cold(pending)

        schedule = FaultSchedule.parse("worker_kill@plan:1")
        with faults.armed(schedule):
            with SolverPool(workers=2) as pool:
                solver = FlexSPSolver(
                    cost_model8,
                    SOLVER,
                    service=pool.client(cost_model8, SOLVER),
                )
                outcomes = solver.plan_shapes_cold(pending)
        assert schedule.injection_counts() == {"worker_kill@plan": 1}
        assert len(outcomes) == len(expected)
        for got, want in zip(outcomes, expected):
            if want is None:
                assert got is None
                continue
            assert got is not None
            assert got[0] == want[0]
            assert got[1] == want[1]


class TestShardReassignment:
    def _cells(self):
        workloads = [
            Workload(
                model=GPT_7B,
                distribution=distribution,
                max_context=32 * 1024,
                cluster=standard_cluster(8),
                global_batch_size=16,
            )
            for distribution in (GITHUB, COMMONCRAWL)
        ]
        return grid_cells(["flexsp", "megatron"], workloads)

    def test_reassign_moves_shards_to_least_loaded_survivors(self):
        scheduler = _ShardScheduler(self._cells(), slots=3)
        victim = next(
            slot for slot in range(3) if scheduler.owners[slot]
        )
        owned = list(scheduler.owners[victim])
        survivors = [s for s in range(3) if s != victim]
        moved = scheduler.reassign(victim, survivors)
        assert moved == len(owned)
        assert scheduler.owners[victim] == []
        for shard_index in owned:
            assert any(
                shard_index in scheduler.owners[s] for s in survivors
            )

    def test_reassign_with_no_survivors_keeps_work(self):
        scheduler = _ShardScheduler(self._cells(), slots=2)
        before = scheduler.remaining()
        assert scheduler.reassign(0, []) == 0
        assert scheduler.remaining() == before

    def test_reassigned_work_still_drains_completely(self):
        cells = self._cells()
        scheduler = _ShardScheduler(cells, slots=2)
        # Slot 0 dies immediately; slot 1 inherits and drains everything.
        scheduler.reassign(0, [1])
        served = []
        while True:
            handout = scheduler.next_cell(1)
            if handout is None:
                break
            served.append(handout[0])
        assert len(served) == len(cells)
        assert scheduler.remaining() == 0
