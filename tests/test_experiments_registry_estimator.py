"""Tests for the experiment registry and the estimator helpers."""

import pathlib

import pytest

from repro.core.types import GroupAssignment, IterationPlan, MicroBatchPlan
from repro.cost.estimator import (
    estimate_iteration_time,
    estimate_microbatch_time,
    group_imbalance,
    microbatch_peak_memory,
    validate_plan_memory,
)
from repro.experiments.registry import all_experiments, experiment

REPO_ROOT = pathlib.Path(__file__).parent.parent


def group(degree, start, lengths):
    return GroupAssignment(
        degree=degree,
        device_ranks=tuple(range(start, start + degree)),
        lengths=tuple(lengths),
    )


class TestRegistry:
    def test_all_paper_artefacts_registered(self):
        keys = {e.key for e in all_experiments()}
        assert keys == {
            "table1", "fig2", "fig4", "table3", "fig5a", "fig5b",
            "fig6", "table4", "fig7", "fig8", "fig9",
        }

    def test_lookup(self):
        assert experiment("fig4").artefact == "Fig. 4"

    def test_unknown_key(self):
        with pytest.raises(KeyError, match="unknown experiment"):
            experiment("fig99")

    def test_benchmarks_exist_on_disk(self):
        for exp in all_experiments():
            assert (REPO_ROOT / exp.benchmark).exists(), exp.benchmark

    def test_modules_importable(self):
        import importlib

        for exp in all_experiments():
            for module in exp.modules:
                importlib.import_module(module)


class TestEstimatorHelpers:
    def test_microbatch_time_is_max_over_groups(self, cost_model16):
        mb = MicroBatchPlan(groups=(group(8, 0, [16384]), group(8, 8, [1024])))
        t = estimate_microbatch_time(cost_model16, mb)
        slow = cost_model16.time_with_overheads([16384], 8)
        assert t == pytest.approx(slow)

    def test_iteration_time_sums(self, cost_model16):
        mb = MicroBatchPlan(groups=(group(8, 0, [4096]),))
        plan = IterationPlan(microbatches=(mb, mb, mb))
        assert estimate_iteration_time(cost_model16, plan) == pytest.approx(
            3 * estimate_microbatch_time(cost_model16, mb)
        )

    def test_peak_memory(self, cost_model16):
        mb = MicroBatchPlan(groups=(group(8, 0, [16384]), group(4, 8, [512])))
        peak = microbatch_peak_memory(cost_model16, mb)
        assert peak == pytest.approx(
            max(
                cost_model16.memory([16384], 8),
                cost_model16.memory([512], 4),
            )
        )

    def test_validate_plan_memory_passes_feasible(self, cost_model16):
        mb = MicroBatchPlan(groups=(group(8, 0, [4096]),))
        validate_plan_memory(cost_model16, IterationPlan(microbatches=(mb,)))

    def test_validate_plan_memory_rejects_overflow(self, cost_model16):
        huge = int(cost_model16.max_tokens_per_device() * 3)
        mb = MicroBatchPlan(groups=(group(2, 0, [huge]),))
        with pytest.raises(ValueError, match="budget"):
            validate_plan_memory(
                cost_model16, IterationPlan(microbatches=(mb,))
            )

    def test_imbalance_zero_for_identical_groups(self, cost_model16):
        mb = MicroBatchPlan(groups=(group(8, 0, [4096]), group(8, 8, [4096])))
        assert group_imbalance(cost_model16, mb) == pytest.approx(0.0, abs=1e-9)

    def test_imbalance_positive_for_stragglers(self, cost_model16):
        mb = MicroBatchPlan(groups=(group(8, 0, [32768]), group(8, 8, [512])))
        assert group_imbalance(cost_model16, mb) > 0.2
