"""Tests for repro.cluster.network: the hierarchical interconnect."""

import pytest

from repro.cluster.network import (
    INFINIBAND_400G,
    NVLINK_A100,
    LinkSpec,
    NetworkSpec,
)


class TestLinkSpec:
    def test_transfer_time_is_alpha_beta(self):
        link = LinkSpec(name="l", bandwidth=1e9, latency=1e-5)
        assert link.transfer_time(1e9) == pytest.approx(1.0 + 1e-5)

    def test_zero_bytes_costs_latency(self):
        link = LinkSpec(name="l", bandwidth=1e9, latency=5e-6)
        assert link.transfer_time(0) == 5e-6

    def test_rejects_negative_bytes(self):
        with pytest.raises(ValueError, match="nbytes"):
            NVLINK_A100.transfer_time(-1)

    def test_rejects_nonpositive_bandwidth(self):
        with pytest.raises(ValueError, match="bandwidth"):
            LinkSpec(name="bad", bandwidth=0, latency=0)

    def test_rejects_negative_latency(self):
        with pytest.raises(ValueError, match="latency"):
            LinkSpec(name="bad", bandwidth=1e9, latency=-1e-6)


class TestBandwidthCliff:
    """The NVLink / InfiniBand gap drives everything in the paper."""

    def test_nvlink_much_faster_than_per_gpu_ib(self):
        """The cliff that matters is per-GPU: a node-spanning group
        shares the node uplink among its 8 resident GPUs."""
        per_gpu_ib = INFINIBAND_400G.bandwidth / 8
        assert NVLINK_A100.bandwidth > 8 * per_gpu_ib

    def test_intra_node_group_uses_nvlink(self):
        net = NetworkSpec()
        link = net.group_link(group_gpus_per_node=8, spans_nodes=1, total_nodes=8)
        assert link.bandwidth == NVLINK_A100.bandwidth

    def test_cross_node_group_shares_uplink(self):
        net = NetworkSpec()
        link = net.group_link(group_gpus_per_node=8, spans_nodes=2, total_nodes=2)
        assert link.bandwidth == pytest.approx(INFINIBAND_400G.bandwidth / 8)

    def test_fewer_members_per_node_get_more_uplink(self):
        net = NetworkSpec()
        dense = net.group_link(group_gpus_per_node=8, spans_nodes=2, total_nodes=2)
        sparse = net.group_link(group_gpus_per_node=2, spans_nodes=2, total_nodes=2)
        assert sparse.bandwidth == pytest.approx(4 * dense.bandwidth)


class TestBandwidthDegradation:
    """S6.4: per-node inter-node bandwidth degrades with cluster size."""

    def test_no_degradation_at_reference(self):
        net = NetworkSpec()
        assert net.inter_node_bandwidth(net.reference_nodes) == pytest.approx(
            INFINIBAND_400G.bandwidth
        )

    def test_monotone_decrease(self):
        net = NetworkSpec()
        values = [net.inter_node_bandwidth(n) for n in (2, 4, 8, 16)]
        assert values == sorted(values, reverse=True)
        assert values[-1] < values[0]

    def test_zero_exponent_disables_degradation(self):
        net = NetworkSpec(degradation_exponent=0.0)
        assert net.inter_node_bandwidth(128) == INFINIBAND_400G.bandwidth

    def test_rejects_nonpositive_nodes(self):
        with pytest.raises(ValueError, match="num_nodes"):
            NetworkSpec().inter_node_bandwidth(0)

    def test_rejects_bad_group_shape(self):
        net = NetworkSpec()
        with pytest.raises(ValueError, match="group_gpus_per_node"):
            net.group_link(group_gpus_per_node=0, spans_nodes=1, total_nodes=1)
        with pytest.raises(ValueError, match="spans_nodes"):
            net.group_link(group_gpus_per_node=1, spans_nodes=0, total_nodes=1)
