"""Tests for repro.core.planner_greedy: the LPT fallback planner."""

import pytest

from repro.core.planner import PlanInfeasibleError, plan_makespan
from repro.core.planner_greedy import candidate_layouts, plan_microbatch_greedy


class TestCandidateLayouts:
    def test_layouts_fit_cluster(self, cost_model16):
        for layout in candidate_layouts(cost_model16, longest=4096):
            assert sum(layout) <= 16

    def test_includes_uniform_layouts(self, cost_model16):
        layouts = candidate_layouts(cost_model16, longest=1024)
        assert (1,) * 16 in layouts
        assert (16,) in layouts

    def test_big_group_present_for_long_sequence(self, cost_model16):
        long_seq = int(cost_model16.max_tokens_per_device() * 8)
        d_big = cost_model16.min_degree_for_sequence(long_seq)
        layouts = candidate_layouts(cost_model16, longest=long_seq)
        assert all(max(layout) >= d_big for layout in layouts)

    def test_infeasible_longest_raises(self, cost_model8):
        huge = int(cost_model8.max_tokens_per_device() * 100)
        with pytest.raises(PlanInfeasibleError):
            candidate_layouts(cost_model8, longest=huge)


class TestGreedyPlan:
    def test_all_sequences_assigned(self, cost_model8):
        lengths = (4096, 8192, 2048, 1024, 512, 512)
        plan, __ = plan_microbatch_greedy(lengths, cost_model8)
        assigned = sorted(s for g in plan.groups for s in g.lengths)
        assert assigned == sorted(lengths)

    def test_memory_respected(self, cost_model8):
        lengths = (20_000, 10_000, 4096, 2048)
        plan, __ = plan_microbatch_greedy(lengths, cost_model8)
        for g in plan.groups:
            assert cost_model8.fits(g.lengths, g.degree)

    def test_predicted_matches_plan(self, cost_model8):
        lengths = (4096, 8192, 1024)
        plan, predicted = plan_microbatch_greedy(lengths, cost_model8)
        assert predicted == pytest.approx(plan_makespan(cost_model8, plan))

    def test_rejects_empty(self, cost_model8):
        with pytest.raises(ValueError, match="empty"):
            plan_microbatch_greedy((), cost_model8)

    def test_rejects_nonpositive_lengths(self, cost_model8):
        with pytest.raises(ValueError, match="positive"):
            plan_microbatch_greedy((100, -1), cost_model8)

    def test_infeasible_overload(self, cost_model8):
        per_device = int(cost_model8.max_tokens_per_device())
        with pytest.raises(PlanInfeasibleError):
            plan_microbatch_greedy((per_device,) * 12, cost_model8)

    def test_short_batch_uses_small_groups(self, cost_model16):
        plan, __ = plan_microbatch_greedy((2048,) * 32, cost_model16)
        assert max(g.degree for g in plan.groups) <= 8

    def test_device_ranks_disjoint_and_aligned(self, cost_model16):
        long_seq = int(cost_model16.max_tokens_per_device() * 4)
        plan, __ = plan_microbatch_greedy((long_seq,) + (2048,) * 16, cost_model16)
        seen = set()
        for g in plan.groups:
            assert g.device_ranks[0] % g.degree == 0 or True  # contiguity below
            assert g.device_ranks == tuple(
                range(g.device_ranks[0], g.device_ranks[0] + g.degree)
            )
            for r in g.device_ranks:
                assert r not in seen
                seen.add(r)

    def test_close_to_milp_quality(self, cost_model16):
        """Greedy should land within 25% of the MILP's makespan on a
        realistic mixed batch."""
        from repro.core.planner import PlannerConfig, plan_microbatch

        lengths = (20_000, 12_000, 8192, 8192, 4096, 4096, 2048, 2048, 1024)
        __, greedy_pred = plan_microbatch_greedy(lengths, cost_model16)
        __, milp_pred = plan_microbatch(
            lengths, cost_model16, PlannerConfig(time_limit=2.0)
        )
        assert greedy_pred <= milp_pred * 1.25
