"""The compiled hot-kernel tier (:mod:`repro.core.kernels`).

Three layers of coverage:

* **Registry semantics** — env parsing, the runtime switch, the test
  override, unknown-name rejection, the attribution channel and the
  banner, all independent of whether numba is installed.
* **Bit-identity of the kernel bodies** — the plain-Python jit targets
  are run *un-jitted* against the numpy/scalar fallbacks over
  randomized instances, so the compiled algorithm is validated on
  hosts without the optional dependency; CI's native leg runs the
  same dispatch through the actual jitted twins.
* **Dispatch-path identity** — the production dispatch sites
  (planner, bucketing, blaster) driven with the un-jitted bodies
  installed as the "native" tier must reproduce the fallback's plans,
  buckets and cut points bit for bit.
"""

import json

import numpy as np
import pytest

from repro.core import kernels, stage_timing
from repro.core.blaster import balanced_cut_points_multi
from repro.core.bucketing import optimal_buckets
from repro.core.planner_greedy import (
    _assign_lpt_scalar,
    _assign_lpt_stacked,
    _layout_stack,
    plan_microbatch_greedy,
)
from repro.core.solver import FlexSPSolver, SolverConfig
from repro.core.types import SolveStats
from repro.cost.model import cost_table


@pytest.fixture
def unjitted_native(monkeypatch):
    """Route dispatch through the un-jitted kernel bodies.

    Patches the registry so every dispatch site takes its native
    branch with the plain-Python body standing in for the jitted twin
    — the production call path, minus numba.  ``force("fallback")``
    still wins, so tests can produce fallback references inside the
    fixture.
    """
    monkeypatch.setattr(
        kernels, "use_native", lambda name: kernels._FORCED != "fallback"
    )
    monkeypatch.setattr(
        kernels, "native", lambda name: kernels.KERNEL_BODIES[name]
    )


class TestRegistry:
    def test_env_parsing_only_zero_opts_out(self):
        assert kernels._env_enabled(None) is True
        assert kernels._env_enabled("") is True
        assert kernels._env_enabled("1") is True
        assert kernels._env_enabled("yes") is True
        assert kernels._env_enabled("0") is False
        assert kernels._env_enabled(" 0 ") is False

    def test_set_enabled_mirrors_into_environment(self):
        import os

        previous = kernels.enabled()
        previous_env = os.environ.get("REPRO_NATIVE")
        try:
            kernels.set_enabled(False)
            assert not kernels.enabled()
            assert os.environ["REPRO_NATIVE"] == "0"
            assert not kernels.use_native("lpt_scalar")
            kernels.set_enabled(True)
            assert kernels.enabled()
            assert os.environ["REPRO_NATIVE"] == "1"
        finally:
            kernels.set_enabled(previous)
            if previous_env is None:
                os.environ.pop("REPRO_NATIVE", None)
            else:
                os.environ["REPRO_NATIVE"] = previous_env

    def test_enabled_scope_restores_env_including_absence(self):
        import os

        previous = kernels.enabled()
        previous_env = os.environ.get("REPRO_NATIVE")
        try:
            os.environ.pop("REPRO_NATIVE", None)
            with kernels.enabled_scope(False):
                assert not kernels.enabled()
                assert os.environ["REPRO_NATIVE"] == "0"
            # The variable was absent before the scope; it must be
            # absent after — not left behind as "0".
            assert "REPRO_NATIVE" not in os.environ
            assert kernels.enabled() == previous

            os.environ["REPRO_NATIVE"] = "1"
            with kernels.enabled_scope(False):
                assert os.environ["REPRO_NATIVE"] == "0"
            assert os.environ["REPRO_NATIVE"] == "1"
        finally:
            kernels.set_enabled(previous)
            if previous_env is None:
                os.environ.pop("REPRO_NATIVE", None)
            else:
                os.environ["REPRO_NATIVE"] = previous_env

    def test_enabled_scope_restores_on_error(self):
        import os

        previous = kernels.enabled()
        previous_env = os.environ.get("REPRO_NATIVE")
        try:
            os.environ.pop("REPRO_NATIVE", None)
            with pytest.raises(RuntimeError):
                with kernels.enabled_scope(False):
                    raise RuntimeError("boom")
            assert "REPRO_NATIVE" not in os.environ
            assert kernels.enabled() == previous
        finally:
            kernels.set_enabled(previous)
            if previous_env is None:
                os.environ.pop("REPRO_NATIVE", None)
            else:
                os.environ["REPRO_NATIVE"] = previous_env

    def test_run_campaign_no_native_leaves_env_untouched(
        self, tmp_path, monkeypatch
    ):
        """Regression: a ``--no-native`` campaign used to write
        ``REPRO_NATIVE=0`` into ``os.environ`` permanently, poisoning
        every later run in the same process.  Two back-to-back
        campaign invocations — with and then without ``--no-native`` —
        must leave both the env var and the runtime switch exactly as
        they were."""
        import os

        from repro import bench

        (tmp_path / "results").mkdir()
        monkeypatch.setattr(bench, "_benchmarks_dir", lambda: tmp_path)
        monkeypatch.delenv("REPRO_NATIVE", raising=False)
        enabled_before = kernels.enabled()
        args = ["--campaign", "smoke", "--no-store", "--batch-size", "4"]
        assert bench.main([*args, "--no-native"]) == 0
        assert "REPRO_NATIVE" not in os.environ
        assert kernels.enabled() == enabled_before
        assert bench.main(args) == 0
        assert "REPRO_NATIVE" not in os.environ
        assert kernels.enabled() == enabled_before

    def test_concurrent_force_flips_never_tear_a_dispatch(self):
        """``use_native`` samples ``_FORCED`` once per call, so a
        reader racing a flip sees a coherent decision (never a raise,
        always a bool) on every dispatch."""
        import threading

        stop = threading.Event()
        errors: list[BaseException] = []

        def flipper():
            while not stop.is_set():
                with kernels.force("fallback"):
                    pass

        def reader():
            try:
                for _ in range(2000):
                    decision = kernels.use_native("lpt_scalar")
                    assert isinstance(decision, bool)
            except BaseException as exc:  # pragma: no cover
                errors.append(exc)
            finally:
                stop.set()

        threads = [
            threading.Thread(target=flipper),
            threading.Thread(target=reader),
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        assert kernels._FORCED is None

    def test_unknown_kernel_name_rejected(self):
        with pytest.raises(KeyError):
            kernels.use_native("nonexistent_kernel")

    def test_force_validates_tier(self):
        with pytest.raises(ValueError):
            with kernels.force("turbo"):
                pass

    def test_force_fallback_wins_and_nests(self):
        with kernels.force("fallback"):
            assert not kernels.use_native("lpt_stacked")
            assert kernels.active_tier() == "fallback"
            with kernels.force(None):
                # Inner override restores auto behaviour...
                assert kernels.active_tier() in ("native", "fallback")
            # ...and unwinding restores the outer force.
            assert not kernels.use_native("lpt_stacked")
        assert kernels._FORCED is None

    def test_force_native_still_degrades_without_numba(self):
        # Must never raise: on hosts without numba the dispatch keeps
        # the fallback; with numba it genuinely compiles.
        with kernels.force("native"):
            decision = kernels.use_native("lpt_scalar")
        assert decision == kernels.native_available()

    def test_warmup_is_noop_when_forced_off(self):
        with kernels.force("fallback"):
            assert kernels.warmup() == 0.0

    def test_kernel_names_match_bodies(self):
        assert set(kernels.KERNEL_NAMES) == set(kernels.KERNEL_BODIES)

    def test_describe_banner_and_dict(self):
        info = kernels.describe_dict()
        assert info["tier"] in ("native", "fallback")
        assert info["kernels"] == list(kernels.KERNEL_NAMES)
        banner = kernels.describe()
        assert banner.startswith("kernel tier:")
        for name in kernels.KERNEL_NAMES:
            assert name in banner


class TestAttribution:
    def test_note_rides_stage_timing_frames(self):
        with stage_timing.collect() as frame:
            kernels.note("lpt_scalar", "fallback")
            kernels.note("lpt_scalar", "fallback")
            kernels.note("bucketing_dp", "native")
        assert frame["kernel:lpt_scalar:fallback"] == 2.0
        assert frame["kernel:bucketing_dp:native"] == 1.0

    def test_tiers_from_stages_extracts_and_marks_mixed(self):
        stages = {
            "lpt": 0.5,
            "kernel:lpt_scalar:fallback": 3.0,
            "kernel:blaster_dp:native": 1.0,
            "kernel:blaster_dp:fallback": 1.0,
        }
        assert kernels.tiers_from_stages(stages) == (
            ("blaster_dp", "mixed"),
            ("lpt_scalar", "fallback"),
        )

    def test_strip_kernel_stages_keeps_real_stages(self):
        stages = {
            "lpt": 0.5,
            "enumerate": 0.1,
            "kernel:lpt_scalar:fallback": 3.0,
        }
        assert kernels.strip_kernel_stages(stages) == {
            "lpt": 0.5,
            "enumerate": 0.1,
        }

    def test_solver_records_kernel_tiers(self, cost_model8):
        solver = FlexSPSolver(
            cost_model8, SolverConfig(num_trials=2, backend="greedy")
        )
        result = solver.solve((4096, 2048, 2048, 1024))
        assert result.stats is not None
        tiers = dict(result.stats.kernel_tiers)
        assert tiers  # at least the LPT dispatch is attributed
        for name, tier in tiers.items():
            assert name in kernels.KERNEL_NAMES
            assert tier in ("native", "fallback", "mixed")


class TestSolveStatsKernelTiers:
    def test_merged_unions_and_marks_conflicts_mixed(self):
        first = SolveStats(kernel_tiers=(("lpt_scalar", "native"),))
        second = SolveStats(
            kernel_tiers=(("lpt_scalar", "fallback"), ("blaster_dp", "native"))
        )
        merged = first.merged(second)
        assert merged.kernel_tiers == (
            ("blaster_dp", "native"),
            ("lpt_scalar", "mixed"),
        )
        # Same-tier union stays un-mixed.
        again = second.merged(second)
        assert dict(again.kernel_tiers)["lpt_scalar"] == "fallback"

    def test_json_round_trip_normalises_lists(self):
        stats = SolveStats(
            cache_misses=3, kernel_tiers=(("lpt_stacked", "native"),)
        )
        revived = SolveStats(**json.loads(json.dumps(vars(stats))))
        assert revived == stats
        assert revived.kernel_tiers == (("lpt_stacked", "native"),)

    def test_stage_seconds_excludes_attribution(self):
        stats = SolveStats(kernel_tiers=(("lpt_scalar", "fallback"),))
        assert "kernel:lpt_scalar:fallback" not in stats.stage_seconds()
        assert set(stats.stage_seconds()) == {
            "enumerate", "lpt", "milp_build", "milp_solve",
        }


class TestBodyBitIdentity:
    """The un-jitted bodies against the fallbacks, randomized."""

    def test_lpt_bodies_match_fallbacks(self, cost_model8):
        table = cost_table(cost_model8)
        rng = np.random.default_rng(11)
        for __ in range(20):
            count = int(rng.integers(1, 24))
            lengths = tuple(
                int(s) for s in rng.integers(128, 12_000, size=count)
            )
            ordered = sorted(lengths, reverse=True)
            stack = _layout_stack(cost_model8, max(lengths))
            rows = stack.surviving(float(sum(lengths)), float(max(lengths)))
            if rows.size == 0:
                continue
            ordered_arr = np.asarray(ordered, dtype=np.float64)

            for row in (int(r) for r in rows):
                lanes = int(stack.lanes[row])
                feasible, choices, makespan = kernels.KERNEL_BODIES[
                    "lpt_scalar"
                ](
                    ordered_arr,
                    stack.degrees[row, :lanes],
                    stack.comm_per_token[row, :lanes],
                    stack.comm_beta[row, :lanes],
                    stack.caps[row, :lanes],
                    table.alpha1, table.alpha2, table.beta1,
                    table.gather, table.exposed_gather,
                )
                ref = _assign_lpt_scalar(
                    ordered, stack.lane_constants[row], table
                )
                if ref is None:
                    assert not feasible
                    continue
                assert feasible
                assert makespan == ref[1]

            feasible, choices, makespans, winner = kernels.KERNEL_BODIES[
                "lpt_stacked"
            ](
                ordered_arr,
                stack.caps[rows],
                stack.degrees[rows],
                stack.comm_per_token[rows],
                stack.comm_beta[rows],
                table.alpha1, table.alpha2, table.beta1,
                table.gather, table.exposed_gather,
            )
            ref = _assign_lpt_stacked(ordered, stack, rows, table)
            if ref is None:
                assert not feasible
                continue
            assert feasible
            ref_choices, ref_makespans, ref_winner = ref
            assert int(winner) == ref_winner
            assert choices.tolist() == ref_choices.tolist()
            assert makespans.tolist() == ref_makespans.tolist()

    def test_bucketing_dispatch_matches_fallback(self, unjitted_native):
        rng = np.random.default_rng(13)
        for __ in range(15):
            count = int(rng.integers(2, 120))
            lengths = [int(s) for s in rng.integers(1, 5_000, size=count)]
            num_buckets = int(rng.integers(1, 20))
            with kernels.force("fallback"):
                ref = optimal_buckets(lengths, num_buckets)
            native = optimal_buckets(lengths, num_buckets)
            assert native == ref

    def test_blaster_dispatch_matches_fallback(self, unjitted_native):
        rng = np.random.default_rng(17)
        for __ in range(15):
            count = int(rng.integers(2, 120))
            lengths = sorted(
                int(s) for s in rng.integers(1, 5_000, size=count)
            )
            top = int(rng.integers(1, count + 1))
            counts = tuple(range(max(1, top - 2), top + 1))
            with kernels.force("fallback"):
                ref = balanced_cut_points_multi(lengths, counts)
            native = balanced_cut_points_multi(lengths, counts)
            assert native == ref

    def test_planner_dispatch_matches_fallback(
        self, cost_model8, unjitted_native, monkeypatch
    ):
        from repro.core import planner_greedy

        rng = np.random.default_rng(19)
        for threshold in (0, 10_000):  # stacked and scalar routes
            monkeypatch.setattr(
                planner_greedy, "_VECTOR_THRESHOLD", threshold
            )
            for __ in range(5):
                count = int(rng.integers(1, 16))
                lengths = tuple(
                    int(s) for s in rng.integers(256, 8_000, size=count)
                )
                if sum(lengths) > cost_model8.cluster_token_capacity():
                    continue
                with kernels.force("fallback"):
                    ref_plan, ref_time = plan_microbatch_greedy(
                        lengths, cost_model8
                    )
                plan, predicted = plan_microbatch_greedy(
                    lengths, cost_model8
                )
                assert plan == ref_plan
                assert predicted == ref_time
